#include "sim/cache.hh"

#include <array>
#include <string>

#include "base/logging.hh"

namespace ddc {

namespace {

/**
 * "NP->R"-style tag-transition labels with static storage (the trace
 * sink keeps the pointers), built once on first traced transition.
 */
std::string_view
transitionName(LineTag from, LineTag to)
{
    constexpr std::size_t kTags = 8;
    static const auto table = [] {
        std::array<std::array<std::string, kTags>, kTags> names;
        for (std::size_t f = 0; f < kTags; f++) {
            for (std::size_t t = 0; t < kTags; t++) {
                names[f][t] =
                    std::string(toString(static_cast<LineTag>(f))) +
                    "->" +
                    std::string(toString(static_cast<LineTag>(t)));
            }
        }
        return names;
    }();
    return table[static_cast<std::size_t>(from)]
                [static_cast<std::size_t>(to)];
}

/** Miss-span names per CpuOp (static storage for the sink). */
std::string_view
missName(CpuOp op)
{
    switch (op) {
      case CpuOp::Read:        return "read_miss";
      case CpuOp::Write:       return "write_miss";
      case CpuOp::TestAndSet:  return "ts_miss";
      case CpuOp::ReadLock:    return "readlock_miss";
      case CpuOp::WriteUnlock: return "writeunlock_miss";
    }
    return "miss";
}

std::string
refStatName(const MemRef &ref, bool miss)
{
    std::string name = "cache.";
    switch (ref.op) {
      case CpuOp::Read:        name += miss ? "read_miss." : "read_hit.";
                               break;
      case CpuOp::Write:       name += miss ? "write_miss." : "write_hit.";
                               break;
      case CpuOp::TestAndSet:  name += "ts."; break;
      case CpuOp::ReadLock:    name += "readlock."; break;
      case CpuOp::WriteUnlock: name += "writeunlock."; break;
    }
    name += toString(ref.cls);
    return name;
}

} // namespace

Cache::Cache(PeId pe, std::size_t num_lines, const Protocol &protocol,
             const Clock &clock, stats::CounterSet &stats,
             ExecutionLog *log, std::size_t block_words, std::size_t ways)
    : pe(pe), protocol(protocol), clock(clock), stats(stats), log(log),
      blockSize(block_words), ways(ways)
{
    ddc_assert(num_lines > 0, "cache needs at least one line");
    ddc_assert(block_words >= 1, "block size must be at least one word");
    ddc_assert(ways >= 1 && num_lines % ways == 0,
               "associativity must divide the line count");
    std::size_t num_sets = num_lines / ways;
    if ((blockSize & (blockSize - 1)) == 0 &&
        (num_sets & (num_sets - 1)) == 0) {
        pow2Geometry = true;
        blockShift = 0;
        for (std::size_t size = blockSize; size > 1; size >>= 1)
            blockShift++;
        setMask = num_sets - 1;
    }
    lines.resize(num_lines);
    for (auto &line : lines)
        line.data.assign(blockSize, 0);

    statRefs = this->stats.intern("cache.refs");
    statWriteback = this->stats.intern("cache.writeback");
    statFlush = this->stats.intern("cache.flush");
    statFill = this->stats.intern("cache.fill");
    statSnarf = this->stats.intern("cache.snarf");
    statSnarfSuppressed = this->stats.intern("cache.snarf_suppressed");
    statInvalidated = this->stats.intern("cache.invalidated");
    statSupply = this->stats.intern("cache.supply");
    statBroadcastFill = this->stats.intern("cache.broadcast_fill");

    const CpuOp ops[kNumCpuOps] = {CpuOp::Read, CpuOp::Write,
                                   CpuOp::TestAndSet, CpuOp::ReadLock,
                                   CpuOp::WriteUnlock};
    const DataClass classes[kNumClasses] = {
        DataClass::Code, DataClass::Local, DataClass::Shared};
    for (CpuOp op : ops) {
        for (DataClass cls : classes) {
            for (int miss = 0; miss < 2; miss++) {
                MemRef ref;
                ref.op = op;
                ref.cls = cls;
                refStat[static_cast<std::size_t>(op)][miss]
                       [static_cast<std::size_t>(cls)] =
                    this->stats.intern(refStatName(ref, miss != 0));
            }
        }
    }
}

void
Cache::connectBus(Bus &bus_to_join)
{
    ddc_assert(bus == nullptr, "cache already attached to a bus");
    ddc_assert(bus_to_join.blockWords() == blockSize,
               "cache and bus disagree on the block size");
    bus = &bus_to_join;
    clientIndex = bus->attach(this);
    // Nothing can be pending yet; stay disarmed until a miss arms us,
    // and no line is held yet, so the supplier scan can skip us too.
    bus->setRequestArmed(clientIndex, false);
    bus->setSupplier(clientIndex, false);
    if (bus->snoopFilterActive()) {
        // Snoops can only matter for blocks this cache holds, so let
        // the bus's sharer index route them; every line is NotPresent
        // right now, matching the (empty) index.
        bus->setSnoopIndexed(clientIndex);
        busIndexed = true;
    }
}

void
Cache::setArmed(bool is_armed)
{
    bus->setRequestArmed(clientIndex, is_armed);
}

void
Cache::setObserver(obs::Recorder *recorder, std::size_t shard)
{
    stateTrace =
        recorder ? recorder->trace(obs::Category::State, shard)
                 : nullptr;
    missTrace =
        recorder ? recorder->trace(obs::Category::Miss, shard)
                 : nullptr;
    metrics = recorder ? recorder->metricsLane(shard) : nullptr;
    lockRec = recorder ? recorder->lockLane(shard) : nullptr;
    if (stateTrace)
        stateCause = "cpu";
}

void
Cache::addTagCensus(std::uint64_t *counts) const
{
    for (const Line &line : lines)
        counts[static_cast<std::size_t>(line.state.tag)]++;
}

void
Cache::traceStateChange(LineTag from, LineTag to, Addr base)
{
    obs::TraceEvent event;
    event.ts = clock.now;
    event.name = transitionName(from, to);
    event.detail = stateCause;
    event.addr = base;
    event.has_addr = true;
    event.track = obs::kTrackPes;
    event.tid = pe;
    stateTrace->push(event);
}

void
Cache::requestNacked()
{
    pending.retries++;
}

void
Cache::requestKilled()
{
    pending.retries++;
}

Addr
Cache::blockBase(Addr addr) const
{
    if (pow2Geometry)
        return addr & ~((Addr{1} << blockShift) - 1);
    return addr - addr % static_cast<Addr>(blockSize);
}

std::size_t
Cache::setBase(Addr addr) const
{
    if (pow2Geometry)
        return (static_cast<std::size_t>(addr >> blockShift) & setMask) *
               ways;
    std::size_t num_sets = lines.size() / ways;
    auto set = static_cast<std::size_t>(
        (addr / static_cast<Addr>(blockSize)) %
        static_cast<Addr>(num_sets));
    return set * ways;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    std::size_t base = setBase(addr);
    for (std::size_t way = 0; way < ways; way++) {
        Line &line = lines[base + way];
        if (line.state.tag != LineTag::NotPresent &&
            line.base == blockBase(addr)) {
            return &line;
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::Line &
Cache::victimLine(Addr addr)
{
    if (Line *match = findLine(addr))
        return *match;
    std::size_t base = setBase(addr);
    Line *victim = &lines[base];
    for (std::size_t way = 0; way < ways; way++) {
        Line &line = lines[base + way];
        if (line.state.tag == LineTag::NotPresent)
            return line;
        if (line.last_use < victim->last_use)
            victim = &line;
    }
    return *victim;
}

Cache::Line &
Cache::pendingLine()
{
    return lines[pending.way_index];
}

const Cache::Line &
Cache::pendingLine() const
{
    return lines[pending.way_index];
}

bool
Cache::holdsBlock(const Line &line, Addr addr) const
{
    return line.state.tag != LineTag::NotPresent &&
           line.base == blockBase(addr);
}

LineState
Cache::stateFor(const Line &line, Addr addr) const
{
    if (!holdsBlock(line, addr))
        return {LineTag::NotPresent, 0};
    return line.state;
}

SnoopReaction
Cache::snoopReaction(LineState state, BusOp op) const
{
    auto op_index = static_cast<std::size_t>(op);
    ddc_assert(op_index < kNumSnoopOps,
               "snooped an unresolved conditional bus op");
    if (state.streak != 0)
        return protocol.onSnoop(state, op);
    // Filled lazily rather than eagerly at construction: combinations
    // a protocol treats as impossible panic inside onSnoop, and must
    // keep doing so only when actually reached.
    auto tag_index = static_cast<std::size_t>(state.tag);
    if (!snoopMemoValid[tag_index][op_index]) {
        snoopMemo[tag_index][op_index] = protocol.onSnoop(state, op);
        snoopMemoValid[tag_index][op_index] = true;
    }
    return snoopMemo[tag_index][op_index];
}

CpuReaction
Cache::cpuReaction(LineState state, CpuOp op, DataClass cls) const
{
    if (state.streak != 0)
        return protocol.onCpuAccess(state, op, cls);
    auto tag_index = static_cast<std::size_t>(state.tag);
    auto op_index = static_cast<std::size_t>(op);
    auto cls_index = static_cast<std::size_t>(cls);
    if (!cpuMemoValid[tag_index][op_index][cls_index]) {
        cpuMemo[tag_index][op_index][cls_index] =
            protocol.onCpuAccess(state, op, cls);
        cpuMemoValid[tag_index][op_index][cls_index] = true;
    }
    return cpuMemo[tag_index][op_index][cls_index];
}

void
Cache::setLineState(Line &line, LineState next)
{
    if (line.state == next)
        return;
    bool was_supplier = snoopReaction(line.state, BusOp::Read).supply;
    bool is_supplier = snoopReaction(next, BusOp::Read).supply;
    if (was_supplier != is_supplier) {
        supplierLines += is_supplier ? 1 : std::size_t{0} - 1;
        if (is_supplier ? supplierLines == 1 : supplierLines == 0)
            bus->setSupplier(clientIndex, supplierLines != 0);
    }
    // Presence for the sharer index is tag-match, not state: an
    // Invalid line still reacts to broadcasts (RB revives I -> R),
    // so only the NotPresent boundary changes the index.
    bool was_present = line.state.tag != LineTag::NotPresent;
    bool is_present = next.tag != LineTag::NotPresent;
    if (busIndexed && was_present != is_present) {
        if (is_present)
            bus->noteBlockPresent(clientIndex, line.base);
        else
            bus->noteBlockAbsent(clientIndex, line.base);
    }
    // Every state change funnels through here, so this one site (plus
    // the cause label set at each entry point) traces the full
    // NP/I/R/L/F transition diagram.
    if (stateTrace && line.state.tag != next.tag)
        traceStateChange(line.state.tag, next.tag, line.base);
    line.state = next;
}

void
Cache::setLineBase(Line &line, Addr base)
{
    if (line.base == base)
        return;
    if (busIndexed && line.state.tag != LineTag::NotPresent) {
        bus->noteBlockAbsent(clientIndex, line.base);
        bus->noteBlockPresent(clientIndex, base);
    }
    line.base = base;
}

Cache::AccessResult
Cache::cpuAccess(const MemRef &ref)
{
    ddc_assert(bus != nullptr, "cache not attached to a bus");
    ddc_assert(!pending.active, "access issued while one is outstanding");
    ddc_assert(!completionReady, "previous completion not consumed");

    accessCounter++;
    Line &line = victimLine(ref.addr);
    LineState state = stateFor(line, ref.addr);
    CpuReaction reaction = cpuReaction(state, ref.op, ref.cls);

    if (stateTrace)
        stateCause = "cpu";
    // A program store to a known lock word is its release — reported
    // at issue so it is seen even when the store completes in-cache
    // (a Local line under a write-back scheme never hits the bus).
    if (lockRec &&
        (ref.op == CpuOp::Write || ref.op == CpuOp::WriteUnlock))
        lockRec->release(pe, ref.addr, clock.now);
    if (metrics && ref.op == CpuOp::Write &&
        holdsBlock(line, ref.addr)) {
        if (line.last_write != kNever)
            metrics->write_gap.sample(clock.now - line.last_write);
        line.last_write = clock.now;
    }

    stats.add(statRefs);
    stats.add(refStat[static_cast<std::size_t>(ref.op)]
                     [reaction.needs_bus ? 1 : 0]
                     [static_cast<std::size_t>(ref.cls)]);

    std::size_t offset =
        static_cast<std::size_t>(ref.addr - blockBase(ref.addr));

    if (!reaction.needs_bus) {
        // Hit: complete within the cache cycle.
        setLineState(line, reaction.next);
        line.last_use = ++lruClock;
        if (reaction.update_value)
            line.data[offset] = ref.data;
        AccessResult result;
        result.complete = true;
        result.value = ref.op == CpuOp::Write ? ref.data
                                              : line.data[offset];
        logCommit(ref, result);
        return result;
    }

    pending.active = true;
    pending.ref = ref;
    pending.reaction = reaction;
    pending.way_index = static_cast<std::size_t>(&line - lines.data());
    pending.phase = computePhase();
    pending.stale = false;
    pending.issue_cycle = clock.now;
    pending.phase_start = clock.now;
    pending.retries = 0;
    if (missTrace) {
        obs::TraceEvent event;
        event.ts = clock.now;
        event.name = missName(ref.op);
        event.addr = ref.addr;
        event.has_addr = true;
        event.phase = 'B';
        event.track = obs::kTrackPes;
        event.tid = pe;
        missTrace->push(event);
    }
    setArmed(true);
    return {};
}

Cache::Phase
Cache::computePhase() const
{
    const Line &line = pendingLine();
    Addr base = blockBase(pending.ref.addr);
    const CpuReaction &reaction = pending.reaction;

    // A dirty victim occupying the target line goes back first.
    if (reaction.allocate && line.state.tag != LineTag::NotPresent &&
        line.base != base && protocol.needsWriteback(line.state)) {
        return Phase::Writeback;
    }

    // An RMW-class transaction takes its input from memory, so a
    // dirty copy of the target block must be flushed first.
    bool rmw_like = reaction.bus_op == BusOp::Rmw ||
                    reaction.bus_op == BusOp::ReadLock;
    if (rmw_like && holdsBlock(line, pending.ref.addr) &&
        protocol.memoryMayBeStale(line.state)) {
        return Phase::Flush;
    }

    // Write-allocate on multi-word blocks needs the block's other
    // words before the write-class transaction can install the line.
    // An Invalid resident block does not count: its data may be
    // partially stale (invalidations carry no data).
    if (reaction.allocate && blockSize > 1 &&
        !stateFor(line, pending.ref.addr).present() &&
        reaction.bus_op != BusOp::Read) {
        return Phase::Fill;
    }
    return Phase::Main;
}

Cache::AccessResult
Cache::takeCompletion()
{
    ddc_assert(completionReady, "no completion available");
    completionReady = false;
    return completion;
}

LineState
Cache::lineState(Addr addr) const
{
    const Line *line = findLine(addr);
    if (line == nullptr)
        return {LineTag::NotPresent, 0};
    return line->state;
}

Word
Cache::lineValue(Addr addr) const
{
    const Line *line = findLine(addr);
    if (line == nullptr)
        return 0;
    return line->data[static_cast<std::size_t>(addr - line->base)];
}

bool
Cache::hasRequest()
{
    if (!pending.active)
        return false;
    // Between line mutations the re-derivation is a pure function of
    // unchanged state, so polling it every cycle is wasted work.
    if (pending.stale)
        revalidatePending();
    return pending.active;
}

BusRequest
Cache::currentRequest()
{
    ddc_assert(pending.active, "no pending request");
    const Line &line = pendingLine();

    BusRequest request;
    switch (pending.phase) {
      case Phase::Writeback:
      case Phase::Flush:
        // Write the dirty victim (Writeback) or the target block
        // itself (Flush) back to memory.
        request.op = BusOp::Write;
        request.addr = line.base;
        request.data = line.data[0];
        if (blockSize > 1) {
            request.block_transfer = true;
            request.block_data = line.data;
        }
        return request;

      case Phase::Fill:
        request.op = BusOp::Read;
        request.addr = pending.ref.addr;
        request.block_transfer = true;
        return request;

      case Phase::Main:
        request.op = pending.reaction.bus_op;
        request.addr = pending.ref.addr;
        request.data = pending.ref.data;
        request.block_transfer = pending.reaction.bus_op == BusOp::Read &&
                                 pending.reaction.allocate &&
                                 blockSize > 1;
        return request;
    }
    ddc_panic("unreachable");
}

void
Cache::requestComplete(const BusResult &result)
{
    ddc_assert(pending.active, "completion without a pending request");
    Line &line = pendingLine();
    Addr base = blockBase(pending.ref.addr);
    std::size_t offset = static_cast<std::size_t>(pending.ref.addr - base);

    if (metrics) {
        metrics->bus_wait.sample(clock.now - pending.phase_start);
        pending.phase_start = clock.now;
    }
    if (stateTrace) {
        switch (pending.phase) {
          case Phase::Writeback: stateCause = "writeback"; break;
          case Phase::Fill:      stateCause = "fill"; break;
          case Phase::Flush:     stateCause = "flush"; break;
          case Phase::Main:      stateCause = "bus_complete"; break;
        }
    }

    switch (pending.phase) {
      case Phase::Writeback:
        stats.add(statWriteback);
        setLineState(line, {LineTag::NotPresent, 0});
        revalidatePending();
        return;

      case Phase::Flush:
        stats.add(statFlush);
        // The flushed block now matches memory.
        setLineState(line, protocol.afterSupply(line.state));
        revalidatePending();
        return;

      case Phase::Fill: {
        stats.add(statFill);
        ddc_assert(result.block.size() == blockSize,
                   "fill returned a malformed block");
        LineState state = stateFor(line, pending.ref.addr);
        setLineBase(line, base);
        line.data = result.block;
        setLineState(line, protocol.afterBusOp(state, BusOp::Read, false));
        line.last_use = ++lruClock;
        revalidatePending();
        return;
      }

      case Phase::Main: {
        const MemRef &ref = pending.ref;
        if (pending.reaction.allocate) {
            LineState state = stateFor(line, ref.addr);
            switch (pending.reaction.bus_op) {
              case BusOp::Read:
                setLineBase(line, base);
                if (blockSize > 1) {
                    ddc_assert(result.block.size() == blockSize,
                               "block read returned a malformed block");
                    line.data = result.block;
                } else {
                    line.data[0] = result.data;
                }
                break;
              case BusOp::ReadLock:
                ddc_assert(blockSize == 1 || stateFor(line, ref.addr).present(),
                           "ReadLock allocation without a resident block");
                setLineBase(line, base);
                line.data[offset] = result.data;
                break;
              case BusOp::Write:
              case BusOp::WriteUnlock:
              case BusOp::Invalidate:
                ddc_assert(blockSize == 1 || stateFor(line, ref.addr).present(),
                           "write allocation without a resident block");
                setLineBase(line, base);
                line.data[offset] = ref.data;
                break;
              case BusOp::Rmw:
                ddc_assert(blockSize == 1 || stateFor(line, ref.addr).present(),
                           "RMW allocation without a resident block");
                setLineBase(line, base);
                line.data[offset] =
                    result.rmw_success ? ref.data : result.data;
                break;
            }
            setLineState(line,
                         protocol.afterBusOp(state, pending.reaction.bus_op,
                                             result.rmw_success));
            line.last_use = ++lruClock;
        }
        AccessResult access;
        access.complete = true;
        access.ts_success = result.rmw_success;
        access.value = ref.op == CpuOp::Write || ref.op == CpuOp::WriteUnlock
                           ? ref.data : result.data;
        finish(access);
        return;
      }
    }
    ddc_panic("unreachable");
}

bool
Cache::wouldSupply(Addr addr, Word &value)
{
    // Polled for every attached cache on every read-class bus
    // transaction; a cache owning no line answers without a lookup.
    if (supplierLines == 0)
        return false;
    const Line *line = findLine(addr);
    if (line == nullptr)
        return false;
    if (!snoopReaction(line->state, BusOp::Read).supply)
        return false;
    value = line->data[static_cast<std::size_t>(addr - line->base)];
    return true;
}

std::vector<Word>
Cache::supplyBlock(Addr addr)
{
    const Line *line = findLine(addr);
    ddc_assert(line != nullptr,
               "supplyBlock for an address this cache does not hold");
    return line->data;
}

void
Cache::observe(const BusTransaction &txn)
{
    Line *found = findLine(txn.addr);
    if (found == nullptr)
        return; // Caches react only to blocks they contain.
    Line &line = *found;
    LineState state = line.state;

    SnoopReaction reaction = snoopReaction(state, txn.op);
    ddc_assert(!reaction.supply,
               "supply decision must be resolved before broadcast");

    if (stateTrace) {
        stateCause = txn.op == BusOp::Read ? "snoop_read"
                     : txn.op == BusOp::Invalidate ? "snoop_bi"
                                                   : "snoop_write";
    }

    // A snoop that neither moves the state nor captures data is a
    // no-op; skipping it keeps the pending re-derivation lazy (a
    // spinning cache is not re-evaluated for every failed broadcast
    // that changes nothing).
    if (reaction.next == state && !reaction.snarf)
        return;

    bool was_present = state.present();
    if (reaction.snarf && !was_present && blockSize > 1 &&
        txn.block.empty()) {
        // The protocol wants to revive this dead block from the data
        // flowing past, but a word-granular transaction (e.g. a
        // failed test-and-set broadcast) cannot fill a multi-word
        // line: the block's other words may be stale.  Stay dead.
        stats.add(statSnarfSuppressed);
        return;
    }
    if (reaction.next != state) {
        // The pending plan is a pure function of line *state* (data is
        // read only at completion), so a snarf that merely refreshes
        // the value leaves it valid.
        pending.stale = true;
        setLineState(line, reaction.next);
    }
    if (reaction.snarf) {
        if (!txn.block.empty()) {
            ddc_assert(txn.block.size() == blockSize,
                       "snarf of a malformed block");
            line.data = txn.block;
        } else {
            line.data[static_cast<std::size_t>(txn.addr - line.base)] =
                txn.data;
        }
        stats.add(statSnarf);
    }
    if (was_present && !reaction.next.present())
        stats.add(statInvalidated);
}

void
Cache::supplied(Addr addr)
{
    Line *line = findLine(addr);
    ddc_assert(line != nullptr,
               "supplied() for an address this cache does not hold");
    stats.add(statSupply);
    if (stateTrace)
        stateCause = "supply";
    setLineState(*line, protocol.afterSupply(line->state));
    pending.stale = true;
}

void
Cache::revalidatePending()
{
    pending.stale = false;
    if (!pending.active)
        return;

    // Re-evaluate the access against the current line state: a snooped
    // broadcast may have completed it (RWB write broadcast / RB read
    // broadcast), changed which transaction is appropriate (e.g. a
    // broken write streak downgrades BI to a plain bus write), or
    // erased / re-created the need for a write-back, fill, or flush.
    Line &line = pendingLine();
    LineState state = stateFor(line, pending.ref.addr);
    CpuReaction reaction = cpuReaction(state, pending.ref.op,
                                       pending.ref.cls);
    if (!reaction.needs_bus) {
        stats.add(statBroadcastFill);
        if (stateTrace)
            stateCause = "broadcast_fill";
        setLineState(line, reaction.next);
        if (reaction.update_value) {
            line.data[static_cast<std::size_t>(
                pending.ref.addr - line.base)] = pending.ref.data;
        }
        AccessResult access;
        access.complete = true;
        access.value =
            pending.ref.op == CpuOp::Write
                ? pending.ref.data
                : line.data[static_cast<std::size_t>(pending.ref.addr -
                                                     line.base)];
        finish(access);
        return;
    }
    pending.reaction = reaction;
    pending.phase = computePhase();
}

void
Cache::finish(const AccessResult &result)
{
    if (metrics) {
        metrics->miss_service.sample(clock.now - pending.issue_cycle);
        metrics->miss_retries.sample(pending.retries);
    }
    if (missTrace) {
        obs::TraceEvent event;
        event.ts = clock.now;
        event.name = missName(pending.ref.op);
        event.value = static_cast<std::int64_t>(pending.retries);
        event.value_name = "retries";
        event.phase = 'E';
        event.track = obs::kTrackPes;
        event.tid = pe;
        missTrace->push(event);
    }
    logCommit(pending.ref, result);
    pending.active = false;
    setArmed(false);
    completionReady = true;
    completion = result;
    if (wakeFlag != nullptr)
        *wakeFlag = 1;
}

void
Cache::logCommit(const MemRef &ref, const AccessResult &result)
{
    if (log == nullptr)
        return;
    LogEntry entry;
    entry.cycle = clock.now;
    entry.pe = pe;
    entry.op = ref.op;
    entry.addr = ref.addr;
    entry.value = result.value;
    if (ref.op == CpuOp::TestAndSet) {
        entry.stored = ref.data;
        entry.ts_success = result.ts_success;
    }
    log->append(entry);
}

} // namespace ddc
