/**
 * @file
 * Figure 3-1 reproduction: the RB scheme's per-line state transition
 * diagram, printed as a transition table generated from the shipped
 * protocol object (so the table cannot drift from the code), followed
 * by microbenchmarks of protocol dispatch and of the elementary
 * coherence operations on a live bus.
 */

#include "bench_common.hh"

#include <iostream>
#include <sstream>

#include "core/rb.hh"
#include "sim/scenario.hh"
#include "stats/table.hh"
#include "verify/product_machine.hh"

namespace {

using namespace ddc;

/** Render a CPU-side transition row. */
std::string
cpuEffect(const RbProtocol &rb, LineState state, CpuOp op)
{
    auto reaction = rb.onCpuAccess(state, op, DataClass::Shared);
    if (!reaction.needs_bus)
        return std::string(toString(reaction.next)) + " (in cache)";
    std::string bus{toString(reaction.bus_op)};
    LineState next = rb.afterBusOp(state, reaction.bus_op, true);
    return std::string(toString(next)) + " (" + bus + ")";
}

/** Render a snoop-side transition row. */
std::string
snoopEffect(const RbProtocol &rb, LineState state, BusOp op)
{
    auto reaction = rb.onSnoop(state, op);
    if (reaction.supply)
        return "interrupt BR, supply data, -> R";
    std::string result{toString(reaction.next)};
    if (reaction.snarf)
        result += " (snarf data)";
    return result;
}

/** Build the whole Figure 3-1 reproduction as one custom point. */
exp::RunResult
measure()
{
    using stats::Table;
    RbProtocol rb;
    std::ostringstream os;

    os <<
        "Figure 3-1: state transition diagram for each cache entry,\n"
        "RB scheme (generated from the implementation)\n"
        "Legend: CW/CR = CPU write/read, BW/BR = bus write/read;\n"
        "modifiers: 1 = generate BW (write through), 2 = interrupt BR\n"
        "and supply data, 3 = generate BR (cache miss)\n\n";

    const LineState states[] = {{LineTag::Invalid, 0},
                                {LineTag::Readable, 0},
                                {LineTag::Local, 0},
                                {LineTag::NotPresent, 0}};

    Table table;
    table.setHeader({"State", "CR (CPU read)", "CW (CPU write)",
                     "BR (bus read)", "BW (bus write)"});
    for (auto state : states) {
        table.addRow({std::string(toString(state)),
                      cpuEffect(rb, state, CpuOp::Read),
                      cpuEffect(rb, state, CpuOp::Write),
                      snoopEffect(rb, state, BusOp::Read),
                      snoopEffect(rb, state, BusOp::Write)});
    }
    os << table.render() << "\n";
    os <<
        "Paper edges covered: I--CR/3-->R, I--CW/1-->L, I--BR-->R(snarf),\n"
        "I--BW-->I, R--CR-->R, R--CW/1-->L, R--BR-->R, R--BW-->I,\n"
        "L--CR-->L, L--CW-->L, L--BR/2-->R (interrupt + supply),\n"
        "L--BW-->I.  Every edge is also unit-tested in\n"
        "tests/protocol_rb_test.cc and model-checked exhaustively in\n"
        "tests/product_machine_test.cc.\n\n";

    // The Section 4 lemma, made visible: enumerate every reachable
    // 3-cache configuration of this exact implementation.
    auto check = checkProductMachine(rb, 3);
    os << "Section 4 lemma check (3 caches, exhaustive: "
       << check.states_explored << " states): "
       << (check.ok ? "PASS" : "FAIL") << "\n"
       << "Reachable configurations (sorted tag multisets):\n";
    for (const auto &config : check.configurations)
        os << "  [" << config << "]\n";
    os <<
        "Every configuration is local-type (one L, rest dead) or\n"
        "shared-type (only R/I/NP) - exactly the lemma.\n\n";

    exp::RunResult result;
    result.rendered = os.str();
    result.setMetric("states_explored",
                     static_cast<double>(check.states_explored));
    result.setMetric("lemma_ok", check.ok ? 1.0 : 0.0);
    return result;
}

void
printReproduction(exp::Session &session)
{
    exp::Experiment spec("fig_3_1_rb_transitions",
                         "Figure 3-1: RB transition table and Section 4 "
                         "lemma check, generated from the code");
    spec.addCustom({{"scheme", "RB"}}, measure);
    const auto &results = session.run(spec);
    std::cout << results[0].rendered;
}

void
BM_RbCpuDispatch(benchmark::State &state)
{
    RbProtocol rb;
    LineState line{LineTag::Readable, 0};
    for (auto _ : state) {
        auto reaction = rb.onCpuAccess(line, CpuOp::Read,
                                       DataClass::Shared);
        benchmark::DoNotOptimize(reaction);
    }
}
BENCHMARK(BM_RbCpuDispatch);

void
BM_RbSnoopDispatch(benchmark::State &state)
{
    RbProtocol rb;
    LineState line{LineTag::Invalid, 0};
    for (auto _ : state) {
        auto reaction = rb.onSnoop(line, BusOp::Read);
        benchmark::DoNotOptimize(reaction);
    }
}
BENCHMARK(BM_RbSnoopDispatch);

/** Cost of a full read-miss -> broadcast-fill round on a live bus. */
void
BM_RbReadMissRoundTrip(benchmark::State &state)
{
    Scenario scenario(ProtocolKind::Rb, 4);
    Addr addr = 0;
    for (auto _ : state) {
        scenario.read(0, addr);
        scenario.write(1, addr, 1); // invalidate, keeping misses coming
        addr ^= 1;
    }
}
BENCHMARK(BM_RbReadMissRoundTrip);

/** Cost of the write-hit fast path (Local state, no bus). */
void
BM_RbLocalWriteHit(benchmark::State &state)
{
    Scenario scenario(ProtocolKind::Rb, 4);
    scenario.write(0, 0, 1); // take ownership
    Word value = 2;
    for (auto _ : state) {
        scenario.write(0, 0, value);
        value = value % 1000 + 1;
    }
}
BENCHMARK(BM_RbLocalWriteHit);

/** Cost of the Local-owner intervention (kill + supply + retry). */
void
BM_RbIntervention(benchmark::State &state)
{
    Scenario scenario(ProtocolKind::Rb, 2);
    for (auto _ : state) {
        scenario.write(0, 0, 1);
        scenario.write(0, 0, 2); // dirty Local
        benchmark::DoNotOptimize(scenario.read(1, 0)); // killed + supplied
    }
}
BENCHMARK(BM_RbIntervention);

} // namespace

DDC_BENCH_MAIN(printReproduction)
