/**
 * @file
 * Ablation A8: set associativity (the "set size of one" half of
 * assumption 7).  Capacity held constant in words while associativity
 * sweeps 1..8 (and fully associative), on the Cm*-mix application and
 * on a deliberate conflict workload.  The question: how much of the
 * Table 1-1 miss budget is conflict misses that associativity could
 * remove, and does it change the shared-data story?
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

/** Strided reads engineered to conflict in a direct-mapped cache. */
Trace
makeConflictTrace(int num_pes, std::size_t cache_words, int hot_addrs,
                  int passes)
{
    Trace trace(num_pes);
    for (PeId pe = 0; pe < num_pes; pe++) {
        for (int pass = 0; pass < passes; pass++) {
            for (int i = 0; i < hot_addrs; i++) {
                // All hot addresses map to the same direct-mapped set.
                Addr addr = localBase(pe) +
                            static_cast<Addr>(i) * cache_words;
                trace.append(pe, {CpuOp::Read, addr, 0, DataClass::Local});
            }
        }
    }
    return trace;
}

double
readMissRatio(const Trace &trace, std::size_t lines, std::size_t ways,
              ProtocolKind kind)
{
    SystemConfig config;
    config.num_pes = trace.numPes();
    config.cache_lines = lines;
    config.ways = ways;
    config.protocol = kind;
    auto summary = runTrace(config, trace);
    return 100.0 *
           static_cast<double>(
               summary.counters.sumPrefix("cache.read_miss.")) /
           static_cast<double>(summary.total_refs);
}

void
printReproduction()
{
    using stats::Table;

    std::cout <<
        "Ablation A8: set associativity (assumption 7's set size),\n"
        "capacity fixed; LRU replacement within a set\n\n";

    Table cmstar("(a) Cm*-mix read-miss % (1024-word caches, Cm* "
                 "policy)");
    cmstar.setHeader({"ways", "read miss %"});
    auto mix = makeCmStarTrace(cmStarApplicationA(), 4, 30000, 1984);
    for (std::size_t ways : {1u, 2u, 4u, 8u}) {
        cmstar.addRow({std::to_string(ways),
                       Table::num(readMissRatio(mix, 1024, ways,
                                                ProtocolKind::CmStar),
                                  1)});
    }
    std::cout << cmstar.render() << "\n";

    Table conflict("(b) adversarial conflict workload (256-word "
                   "caches, RB): 4 hot addresses per PE, all mapping "
                   "to one direct-mapped set");
    conflict.setHeader({"ways", "read miss %"});
    auto adversarial = makeConflictTrace(2, 256, 4, 64);
    for (std::size_t ways : {1u, 2u, 4u, 8u}) {
        conflict.addRow({std::to_string(ways),
                         Table::num(readMissRatio(adversarial, 256, ways,
                                                  ProtocolKind::Rb),
                                    1)});
    }
    std::cout << conflict.render() << "\n";
    std::cout <<
        "Expected shape: associativity rescues the adversarial pattern\n"
        "completely (100% miss at 1-way -> cold misses only at 4-way)\n"
        "but moves the realistic mix by only a couple of points --\n"
        "consistent with the paper's choice to keep set size 1 and\n"
        "spend the hardware budget on the coherence machinery instead.\n\n";
}

void
BM_AssociativitySweep(benchmark::State &state)
{
    auto ways = static_cast<std::size_t>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 10000, 7);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 1024;
        config.ways = ways;
        config.protocol = ProtocolKind::CmStar;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
}
BENCHMARK(BM_AssociativitySweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
