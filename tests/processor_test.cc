/** @file Unit tests for the Processor executing programs on a System. */

#include <gtest/gtest.h>

#include "sim/system.hh"

namespace ddc {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig config;
    config.num_pes = 2;
    config.cache_lines = 16;
    config.protocol = ProtocolKind::Rb;
    return config;
}

TEST(Processor, ArithmeticAndMoves)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 5)
                             .loadImm(2, 7)
                             .add(3, 1, 2)
                             .sub(4, 2, 1)
                             .addImm(5, 3, 100)
                             .move(6, 5)
                             .halt()
                             .build());
    system.run();
    ASSERT_TRUE(system.allDone());
    auto &pe = system.processor(0);
    EXPECT_EQ(pe.reg(3), 12u);
    EXPECT_EQ(pe.reg(4), 2u);
    EXPECT_EQ(pe.reg(5), 112u);
    EXPECT_EQ(pe.reg(6), 112u);
}

TEST(Processor, LoadAndStoreThroughCache)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 100) // address
                             .loadImm(2, 55)     // value
                             .store(1, 2)
                             .load(3, 1)
                             .halt()
                             .build());
    system.run();
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.processor(0).reg(3), 55u);
    EXPECT_EQ(system.memoryValue(100), 55u);
}

TEST(Processor, StoreWithOffset)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 200)
                             .loadImm(2, 9)
                             .store(1, 2, 3)  // mem[203] = 9
                             .load(4, 1, 3)
                             .halt()
                             .build());
    system.run();
    EXPECT_EQ(system.processor(0).reg(4), 9u);
    EXPECT_EQ(system.memoryValue(203), 9u);
}

TEST(Processor, BranchesAndLoops)
{
    System system(smallConfig());
    // Sum 1..5 into r3.
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 5)   // counter
                             .loadImm(3, 0)      // accumulator
                             .label("loop")
                             .add(3, 3, 1)
                             .addImm(1, 1, -1)
                             .branchIfNotZero(1, "loop")
                             .halt()
                             .build());
    system.run();
    EXPECT_EQ(system.processor(0).reg(3), 15u);
}

TEST(Processor, BranchIfZeroTaken)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 0)
                             .branchIfZero(1, "skip")
                             .loadImm(2, 111) // must be skipped
                             .label("skip")
                             .halt()
                             .build());
    system.run();
    EXPECT_EQ(system.processor(0).reg(2), 0u);
}

TEST(Processor, TestAndSetReturnsOldValue)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 300)
                             .loadImm(2, 1)
                             .testAndSet(3, 1, 2) // succeeds: old 0
                             .testAndSet(4, 1, 2) // fails: old 1
                             .halt()
                             .build());
    system.run();
    EXPECT_EQ(system.processor(0).reg(3), 0u);
    EXPECT_EQ(system.processor(0).reg(4), 1u);
    EXPECT_EQ(system.memoryValue(300), 1u);
}

TEST(Processor, LoadLockedStoreUnlockRoundTrip)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 400)
                             .loadImm(2, 77)
                             .store(1, 2)       // mem[400] = 77
                             .loadLocked(3, 1)  // r3 = 77, word locked
                             .addImm(3, 3, 1)
                             .storeUnlock(1, 3) // mem[400] = 78
                             .load(4, 1)
                             .halt()
                             .build());
    system.run();
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.processor(0).reg(4), 78u);
    EXPECT_EQ(system.memoryValue(400), 78u);
}

TEST(Processor, LockBlocksOtherWriterUntilUnlock)
{
    System system(smallConfig());
    // PE0 locks word 500 and holds it for a while before unlocking;
    // PE1 tries to write it and must not succeed in between.
    ProgramBuilder b0;
    Program p0 = b0.loadImm(1, 500)
                     .loadImm(2, 1)
                     .loadLocked(3, 1)
                     .nop().nop().nop().nop().nop().nop().nop().nop()
                     .nop().nop().nop().nop().nop().nop().nop().nop()
                     .storeUnlock(1, 2) // writes 1
                     .halt()
                     .build();
    ProgramBuilder b1;
    Program p1 = b1.loadImm(1, 500)
                     .loadImm(2, 2)
                     .nop().nop() // let PE0 take the lock first
                     .store(1, 2) // NACKs until the unlock, then writes 2
                     .halt()
                     .build();
    system.setProgram(0, std::move(p0));
    system.setProgram(1, std::move(p1));
    system.run();
    ASSERT_TRUE(system.allDone());
    // PE1's write must have happened after the unlock.
    EXPECT_EQ(system.memoryValue(500), 2u);
    auto counters = system.counters();
    EXPECT_GE(counters.get("bus.nack"), 1u);
}

TEST(Processor, InstructionAndStallCounts)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.loadImm(1, 100)
                             .load(2, 1) // miss: stalls
                             .halt()
                             .build());
    system.run();
    auto &pe = system.processor(0);
    EXPECT_EQ(pe.instructionsRetired(), 3u); // loadImm + load + halt
    EXPECT_GE(pe.stallCycles(), 1u);
}

TEST(Processor, EmptyProgramIsDoneImmediately)
{
    System system(smallConfig());
    system.setProgram(0, Program{});
    system.setProgram(1, Program{});
    EXPECT_TRUE(system.allDone());
}

TEST(Processor, RunningOffTheEndDies)
{
    System system(smallConfig());
    ProgramBuilder builder;
    system.setProgram(0, builder.nop().build()); // no halt
    EXPECT_DEATH(system.run(10), "ran off");
}

} // namespace
} // namespace ddc
