/**
 * @file
 * Unit tests for the RB scheme: every edge of the Figure 3-1 state
 * transition diagram, checked directly against the policy object.
 */

#include <gtest/gtest.h>

#include "core/rb.hh"

namespace ddc {
namespace {

const LineState kNP{LineTag::NotPresent, 0};
const LineState kI{LineTag::Invalid, 0};
const LineState kR{LineTag::Readable, 0};
const LineState kL{LineTag::Local, 0};

class RbTest : public ::testing::Test
{
  protected:
    RbProtocol rb;
};

TEST_F(RbTest, Identity)
{
    EXPECT_EQ(rb.name(), "RB");
    EXPECT_FALSE(rb.broadcastsWrites());
}

// --- CPU read ---------------------------------------------------------

TEST_F(RbTest, ReadHitsInReadable)
{
    auto reaction = rb.onCpuAccess(kR, CpuOp::Read, DataClass::Shared);
    EXPECT_FALSE(reaction.needs_bus);
    EXPECT_EQ(reaction.next, kR);
    EXPECT_FALSE(reaction.update_value);
}

TEST_F(RbTest, ReadHitsInLocal)
{
    auto reaction = rb.onCpuAccess(kL, CpuOp::Read, DataClass::Shared);
    EXPECT_FALSE(reaction.needs_bus);
    EXPECT_EQ(reaction.next, kL);
}

TEST_F(RbTest, ReadMissesInInvalid)
{
    auto reaction = rb.onCpuAccess(kI, CpuOp::Read, DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Read);
    EXPECT_TRUE(reaction.allocate);
}

TEST_F(RbTest, ReadMissesInNotPresent)
{
    auto reaction = rb.onCpuAccess(kNP, CpuOp::Read, DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Read);
}

TEST_F(RbTest, BusReadCompletionLandsInReadable)
{
    EXPECT_EQ(rb.afterBusOp(kI, BusOp::Read, false), kR);
    EXPECT_EQ(rb.afterBusOp(kNP, BusOp::Read, false), kR);
}

// --- CPU write --------------------------------------------------------

TEST_F(RbTest, WriteHitsOnlyInLocal)
{
    auto reaction = rb.onCpuAccess(kL, CpuOp::Write, DataClass::Shared);
    EXPECT_FALSE(reaction.needs_bus);
    EXPECT_EQ(reaction.next, kL);
    EXPECT_TRUE(reaction.update_value);
}

TEST_F(RbTest, WriteFromReadableWritesThrough)
{
    auto reaction = rb.onCpuAccess(kR, CpuOp::Write, DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Write);
}

TEST_F(RbTest, WriteFromInvalidOrAbsentWritesThrough)
{
    for (auto state : {kI, kNP}) {
        auto reaction = rb.onCpuAccess(state, CpuOp::Write,
                                       DataClass::Shared);
        EXPECT_TRUE(reaction.needs_bus);
        EXPECT_EQ(reaction.bus_op, BusOp::Write);
    }
}

TEST_F(RbTest, BusWriteCompletionLandsInLocal)
{
    EXPECT_EQ(rb.afterBusOp(kR, BusOp::Write, false), kL);
    EXPECT_EQ(rb.afterBusOp(kI, BusOp::Write, false), kL);
    EXPECT_EQ(rb.afterBusOp(kNP, BusOp::Write, false), kL);
}

// --- Snooping: bus reads ------------------------------------------------

TEST_F(RbTest, SnoopedReadLeavesReadableUnchanged)
{
    auto reaction = rb.onSnoop(kR, BusOp::Read);
    EXPECT_EQ(reaction.next, kR);
    EXPECT_FALSE(reaction.snarf);
    EXPECT_FALSE(reaction.supply);
}

TEST_F(RbTest, SnoopedReadBroadcastsIntoInvalid)
{
    // The read broadcast: invalid copies snarf the flowing value.
    auto reaction = rb.onSnoop(kI, BusOp::Read);
    EXPECT_EQ(reaction.next, kR);
    EXPECT_TRUE(reaction.snarf);
    EXPECT_FALSE(reaction.supply);
}

TEST_F(RbTest, SnoopedReadInterruptedByLocalOwner)
{
    auto reaction = rb.onSnoop(kL, BusOp::Read);
    EXPECT_TRUE(reaction.supply);
}

TEST_F(RbTest, SnoopedReadIgnoredWhenNotPresent)
{
    auto reaction = rb.onSnoop(kNP, BusOp::Read);
    EXPECT_EQ(reaction.next, kNP);
    EXPECT_FALSE(reaction.snarf);
    EXPECT_FALSE(reaction.supply);
}

// --- Snooping: bus writes -----------------------------------------------

TEST_F(RbTest, SnoopedWriteInvalidatesReadable)
{
    auto reaction = rb.onSnoop(kR, BusOp::Write);
    EXPECT_EQ(reaction.next, kI);
    EXPECT_FALSE(reaction.snarf); // Event broadcast of writes, no data.
}

TEST_F(RbTest, SnoopedWriteInvalidatesLocal)
{
    auto reaction = rb.onSnoop(kL, BusOp::Write);
    EXPECT_EQ(reaction.next, kI);
}

TEST_F(RbTest, SnoopedWriteLeavesInvalidAlone)
{
    auto reaction = rb.onSnoop(kI, BusOp::Write);
    EXPECT_EQ(reaction.next, kI);
    EXPECT_FALSE(reaction.snarf);
}

// --- Supply / write-back -------------------------------------------------

TEST_F(RbTest, SupplierBecomesReadable)
{
    EXPECT_EQ(rb.afterSupply(kL), kR);
}

TEST_F(RbTest, OnlyLocalNeedsWriteback)
{
    EXPECT_TRUE(rb.needsWriteback(kL));
    EXPECT_FALSE(rb.needsWriteback(kR));
    EXPECT_FALSE(rb.needsWriteback(kI));
    EXPECT_FALSE(rb.needsWriteback(kNP));
}

TEST_F(RbTest, MemoryStaleExactlyWhenLocal)
{
    EXPECT_TRUE(rb.memoryMayBeStale(kL));
    EXPECT_FALSE(rb.memoryMayBeStale(kR));
}

// --- Synchronization ops ---------------------------------------------

TEST_F(RbTest, TestAndSetAlwaysUsesBus)
{
    for (auto state : {kR, kL, kI, kNP}) {
        auto reaction = rb.onCpuAccess(state, CpuOp::TestAndSet,
                                       DataClass::Shared);
        EXPECT_TRUE(reaction.needs_bus);
        EXPECT_EQ(reaction.bus_op, BusOp::Rmw);
    }
}

TEST_F(RbTest, RmwSuccessActsAsWrite)
{
    EXPECT_EQ(rb.afterBusOp(kR, BusOp::Rmw, true), kL);
}

TEST_F(RbTest, RmwFailureActsAsRead)
{
    EXPECT_EQ(rb.afterBusOp(kR, BusOp::Rmw, false), kR);
}

TEST_F(RbTest, ReadLockBypassesCacheAndLandsReadable)
{
    // "The initial read-with-lock does not reference the value in the
    // cache" — even a Readable copy goes to the bus.
    auto reaction = rb.onCpuAccess(kR, CpuOp::ReadLock, DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::ReadLock);
    EXPECT_EQ(rb.afterBusOp(kR, BusOp::ReadLock, false), kR);
}

TEST_F(RbTest, WriteUnlockLandsLocal)
{
    auto reaction = rb.onCpuAccess(kR, CpuOp::WriteUnlock,
                                   DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::WriteUnlock);
    EXPECT_EQ(rb.afterBusOp(kR, BusOp::WriteUnlock, false), kL);
}

// --- Transparency -------------------------------------------------------

TEST_F(RbTest, DataClassIsIgnored)
{
    for (auto cls :
         {DataClass::Code, DataClass::Local, DataClass::Shared}) {
        auto reaction = rb.onCpuAccess(kR, CpuOp::Read, cls);
        EXPECT_FALSE(reaction.needs_bus);
    }
}

} // namespace
} // namespace ddc
