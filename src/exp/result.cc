#include "exp/result.hh"

#include "base/logging.hh"

namespace ddc {
namespace exp {

void
RunResult::setMetric(const std::string &name, double value)
{
    for (auto &[metric_name, metric_value] : metrics) {
        if (metric_name == name) {
            metric_value = value;
            return;
        }
    }
    metrics.emplace_back(name, value);
}

double
RunResult::metric(const std::string &name) const
{
    for (const auto &[metric_name, metric_value] : metrics) {
        if (metric_name == name)
            return metric_value;
    }
    return 0.0;
}

bool
RunResult::hasMetric(const std::string &name) const
{
    for (const auto &[metric_name, metric_value] : metrics) {
        if (metric_name == name)
            return true;
    }
    return false;
}

Json
RunResult::toJson(bool include_timing) const
{
    Json json = Json::object();
    json["index"] = Json(static_cast<std::int64_t>(index));

    Json params_json = Json::object();
    for (const auto &[name, value] : params)
        params_json[name] = Json(value);
    json["params"] = std::move(params_json);

    json["status"] = Json(toString(status));
    json["cycles"] = Json(static_cast<std::uint64_t>(cycles));
    json["total_refs"] = Json(total_refs);
    json["bus_transactions"] = Json(bus_transactions);
    json["consistent"] = Json(consistent);
    if (include_timing) {
        json["wall_time_ms"] = Json(wall_time_ms);
        json["sim_time_ms"] = Json(sim_time_ms);
        json["sim_cycles_per_sec"] = Json(sim_cycles_per_sec);
        json["skipped_cycles"] =
            Json(static_cast<std::uint64_t>(skipped_cycles));
        json["skip_fraction"] =
            Json(cycles > 0 ? static_cast<double>(skipped_cycles) /
                                  static_cast<double>(cycles)
                            : 0.0);
        json["snoop_visits"] = Json(snoop_visits);
    }

    Json metrics_json = Json::object();
    for (const auto &[name, value] : metrics)
        metrics_json[name] = Json(value);
    json["metrics"] = std::move(metrics_json);

    Json counters_json = Json::object();
    for (const auto &name : counters.names())
        counters_json[name] = Json(counters.get(name));
    json["counters"] = std::move(counters_json);

    return json;
}

RunResult
RunResult::fromJson(const Json &json)
{
    RunResult result;
    result.index =
        static_cast<std::size_t>(json.find("index")->asInt());
    for (const auto &[name, value] : json.find("params")->items())
        result.params.emplace_back(name, value.asString());
    result.status = json.find("status")->asString() == toString(
                        RunStatus::TimedOut)
                        ? RunStatus::TimedOut
                        : RunStatus::Finished;
    result.cycles =
        static_cast<Cycle>(json.find("cycles")->asInt());
    result.total_refs =
        static_cast<std::uint64_t>(json.find("total_refs")->asInt());
    result.bus_transactions = static_cast<std::uint64_t>(
        json.find("bus_transactions")->asInt());
    result.consistent = json.find("consistent")->asBool();
    if (const Json *wall = json.find("wall_time_ms"))
        result.wall_time_ms = wall->asDouble();
    if (const Json *sim = json.find("sim_time_ms"))
        result.sim_time_ms = sim->asDouble();
    if (const Json *rate = json.find("sim_cycles_per_sec"))
        result.sim_cycles_per_sec = rate->asDouble();
    if (const Json *skipped = json.find("skipped_cycles"))
        result.skipped_cycles = static_cast<Cycle>(skipped->asInt());
    if (const Json *visits = json.find("snoop_visits"))
        result.snoop_visits = static_cast<std::uint64_t>(visits->asInt());
    for (const auto &[name, value] : json.find("metrics")->items())
        result.metrics.emplace_back(name, value.asDouble());
    for (const auto &[name, value] : json.find("counters")->items())
        result.counters.add(name,
                            static_cast<std::uint64_t>(value.asInt()));
    return result;
}

} // namespace exp
} // namespace ddc
