/**
 * @file
 * Extension E1: the hierarchical machine (Section 8's "how to extend
 * our scheme to hierarchical structures more amiable to large scale
 * parallel processing", implemented as recursive RB in src/hier).
 *
 * We run the same clustered-sharing workload on (a) the flat
 * single-bus machine and (b) the hierarchical machine, sweeping the
 * fraction of references that are cluster-local.  The metric that
 * decides scalability is the traffic on the *bottleneck* bus: the one
 * bus of the flat machine vs the global bus of the hierarchy.  The
 * more locality, the more the cluster caches absorb, pushing the
 * saturation knee out — the paper's motivation for hierarchy.
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "hier/hier_system.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace {

using namespace ddc;

const double kLocalities[] = {0.0, 0.5, 0.9, 0.99};

exp::RunResult
runFlat(const Trace &trace)
{
    SystemConfig config;
    config.num_pes = trace.numPes();
    config.cache_lines = 256;
    config.protocol = ProtocolKind::Rb;
    System system(config);
    system.loadTrace(trace);
    system.run();

    exp::RunResult result;
    result.status = system.runStatus();
    result.cycles = system.now();
    result.total_refs = trace.totalRefs();
    result.bus_transactions = system.totalBusTransactions();
    result.setMetric("bottleneck_bus_ops",
                     static_cast<double>(system.totalBusTransactions()));
    return result;
}

exp::RunResult
runHier(const Trace &trace, int clusters, int pes_per_cluster,
        ProtocolKind protocol = ProtocolKind::Rb)
{
    hier::HierConfig config;
    config.num_clusters = clusters;
    config.pes_per_cluster = pes_per_cluster;
    config.cache_lines = 256;
    config.protocol = protocol;
    hier::HierSystem system(config);
    system.loadTrace(trace);
    system.run();

    exp::RunResult result;
    result.status = system.runStatus();
    result.cycles = system.now();
    result.total_refs = trace.totalRefs();
    result.bus_transactions = system.globalBusTransactions();
    result.setMetric("bottleneck_bus_ops",
                     static_cast<double>(system.globalBusTransactions()));
    result.setMetric("cluster_bus_ops",
                     static_cast<double>(
                         system.clusterBusTransactions()));
    return result;
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    const int clusters = 8;
    const int pes_per_cluster = 4;
    const std::size_t refs = 2000;

    std::cout <<
        "Extension E1: hierarchical machine (recursive RB), " << clusters
        << " clusters x " << pes_per_cluster << " PEs = "
        << clusters * pes_per_cluster << " PEs total\n"
        "Same workload on the flat single-bus machine vs the two-level\n"
        "hierarchy, sweeping the cluster-locality of shared data.\n\n";

    exp::ParamGrid grid;
    grid.axis("locality", {"0.00", "0.50", "0.90", "0.99"});
    grid.axis("machine", {"flat", "hier"});

    exp::Experiment sweep_spec("extension_hierarchy_locality",
                               "E1: flat vs hierarchical machine over "
                               "cluster-locality of shared data");
    for (std::size_t flat = 0; flat < grid.size(); flat++) {
        auto indices = grid.indicesAt(flat);
        double locality = kLocalities[indices[0]];
        bool hierarchical = indices[1] == 1;
        sweep_spec.addCustom(grid.paramsAt(flat), [=]() {
            auto trace = makeClusteredTrace(clusters, pes_per_cluster,
                                            refs, locality, 0.3, 77);
            return hierarchical ? runHier(trace, clusters,
                                          pes_per_cluster)
                                : runFlat(trace);
        });
    }
    const auto &sweep = session.run(sweep_spec);

    Table table;
    table.setHeader({"cluster-local", "flat cycles", "flat bus ops",
                     "hier cycles", "global bus ops", "cluster bus ops",
                     "global reduction"});
    for (std::size_t i = 0; i < 4; i++) {
        const auto &flat_run = sweep[i * 2];
        const auto &hier_run = sweep[i * 2 + 1];
        auto flat_ops = flat_run.bus_transactions;
        auto global_ops = hier_run.bus_transactions;
        table.addRow(
            {Table::num(kLocalities[i], 2),
             std::to_string(flat_run.cycles), std::to_string(flat_ops),
             std::to_string(hier_run.cycles),
             std::to_string(global_ops),
             std::to_string(static_cast<std::uint64_t>(
                 hier_run.metric("cluster_bus_ops"))),
             Table::num(static_cast<double>(flat_ops) /
                            static_cast<double>(global_ops),
                        1) +
                 "x"});
    }
    std::cout << table.render();

    // The L1 scheme inside the clusters: RB vs RWB.
    exp::ParamGrid l1_grid;
    l1_grid.axis("l1_scheme", {"RB", "RWB"});
    exp::Experiment l1_spec("extension_hierarchy_l1_scheme",
                            "E1: L1 scheme within clusters on the "
                            "0.9-local workload");
    const ProtocolKind l1_kinds[] = {ProtocolKind::Rb, ProtocolKind::Rwb};
    for (std::size_t flat = 0; flat < l1_grid.size(); flat++) {
        auto protocol = l1_kinds[flat];
        l1_spec.addCustom(l1_grid.paramsAt(flat), [=]() {
            auto trace = makeClusteredTrace(clusters, pes_per_cluster,
                                            refs, 0.9, 0.3, 77);
            return runHier(trace, clusters, pes_per_cluster, protocol);
        });
    }
    const auto &l1_results = session.run(l1_spec);

    Table schemes("\nL1 scheme within clusters (0.9 cluster-local "
                  "workload)");
    schemes.setHeader({"L1 scheme", "cycles", "global bus ops",
                       "cluster bus ops"});
    for (std::size_t i = 0; i < l1_results.size(); i++) {
        const auto &point = l1_results[i];
        schemes.addRow({std::string(toString(l1_kinds[i])),
                        std::to_string(point.cycles),
                        std::to_string(point.bus_transactions),
                        std::to_string(static_cast<std::uint64_t>(
                            point.metric("cluster_bus_ops")))});
    }
    std::cout << schemes.render();
    std::cout <<
        "\nReading: the flat machine funnels every transaction through\n"
        "one bus; the hierarchy serializes only cross-cluster events\n"
        "globally.  As cluster locality grows, the global-bus demand\n"
        "collapses (the 'global reduction' column) and the hierarchy\n"
        "finishes sooner despite its extra level - the scaling path\n"
        "Section 8 asks for.  Consistency is checked by the same serial\n"
        "checker as the flat machine (tests/hier_test.cc).\n\n";
}

void
BM_HierVsFlat(benchmark::State &state)
{
    bool hierarchical = state.range(0) == 1;
    auto trace = makeClusteredTrace(8, 4, 1000, 0.9, 0.3, 77);
    for (auto _ : state) {
        auto point = hierarchical ? runHier(trace, 8, 4) : runFlat(trace);
        benchmark::DoNotOptimize(point.cycles);
    }
    state.SetLabel(hierarchical ? "hierarchical" : "flat");
}
BENCHMARK(BM_HierVsFlat)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/** Simulated completion cycles, as counters. */
void
BM_HierSimulatedCycles(benchmark::State &state)
{
    auto locality = static_cast<double>(state.range(0)) / 100.0;
    auto trace = makeClusteredTrace(8, 4, 1000, locality, 0.3, 77);
    double flat_cycles = 0.0;
    double hier_cycles = 0.0;
    for (auto _ : state) {
        flat_cycles = static_cast<double>(runFlat(trace).cycles);
        hier_cycles = static_cast<double>(runHier(trace, 8, 4).cycles);
    }
    state.counters["flat_cycles"] = flat_cycles;
    state.counters["hier_cycles"] = hier_cycles;
}
BENCHMARK(BM_HierSimulatedCycles)->Arg(0)->Arg(90)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
