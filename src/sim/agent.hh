/**
 * @file
 * Agent interface and the per-PE cache-bank selector.
 *
 * An Agent is whatever drives one PE's reference stream: a Processor
 * executing a Program, or a TraceAgent replaying a Trace stream.  The
 * System ticks every agent once per cycle after the bus phase.
 *
 * CacheSet implements the multiple-bus extension of Section 7 /
 * Figure 7-1: "The private caches and the shared memory are divided
 * into ... memory banks using the least significant address bit[s]".
 * Each PE owns one cache bank per bus and routes each access by
 * address interleaving.
 */

#ifndef DDC_SIM_AGENT_HH
#define DDC_SIM_AGENT_HH

#include <vector>

#include "base/logging.hh"
#include "sim/cache.hh"
#include "sim/clock.hh"

namespace ddc {

/** Anything that issues one PE's reference stream. */
class Agent
{
  public:
    virtual ~Agent() = default;

    /** Advance one cycle. */
    virtual void tick() = 0;

    /** True when the agent has no more work. */
    virtual bool done() const = 0;

    /**
     * Lower bound on the cycle whose tick could first make done()
     * true (part of the lookahead contract, see DESIGN.md).  The
     * kernel uses it to clamp multi-cycle barrier windows so a
     * machine's completion cycle is re-checked exactly where a
     * cycle-by-cycle run would have stopped.  Must be side-effect
     * free; the conservative default — could finish this cycle —
     * keeps windows at one cycle around agents that do not opt in.
     */
    virtual Cycle earliestDoneCycle(Cycle now) const { return now; }

    /**
     * Earliest cycle at which this agent can next change machine state
     * (part of the next-event contract, see DESIGN.md).
     *
     * Must be side-effect free.  Return @p now when the agent would do
     * real work if ticked this cycle; a future cycle when it is in a
     * self-timed wait; kNever when it is blocked on another component
     * (e.g. a cache miss awaiting a bus grant) and can only be woken
     * by that component's progress.  The conservative default — always
     * runnable — disables skipping around agents that do not opt in.
     */
    virtual Cycle nextEventCycle(Cycle now) const { return now; }

    /**
     * Account for @p count cycles skipped while this agent was
     * quiescent.  Only called when nextEventCycle() reported no event
     * in the skipped interval; must update exactly the state and
     * statistics that @p count consecutive tick() calls would have
     * (stall counters etc.), so skipping stays byte-identical.
     */
    virtual void skipCycles(Cycle count) { (void)count; }

    /**
     * True when every tick until the agent's outstanding cache access
     * completes would only account one stall cycle.  The System
     * consults this once after each real tick and then stops ticking
     * the agent until its cache raises the completion wake flag,
     * adding the skipped cycles in bulk via addStallCycles() —
     * strictly an optimization contract: ticking through the stall
     * anyway must be behaviorally identical.  The conservative
     * default (never stalled) keeps agents that do not opt in on the
     * every-cycle schedule.
     */
    virtual bool stalledOnCompletion() const { return false; }

    /**
     * Account @p count stall cycles the System skipped while
     * stalledOnCompletion() held (exactly the bookkeeping those
     * ticks would have done).
     */
    virtual void addStallCycles(Cycle count) { (void)count; }
};

/** Routes one PE's accesses across its per-bus cache banks. */
class CacheSet
{
  public:
    /** @param banks One cache per bus, in bus order (non-owning). */
    explicit CacheSet(std::vector<Cache *> banks)
        : banks(std::move(banks))
    {
        ddc_assert(!this->banks.empty(), "CacheSet needs at least one bank");
    }

    /** Issue an access on the bank owning ref.addr. */
    Cache::AccessResult
    access(const MemRef &ref)
    {
        ddc_assert(pendingBank == nullptr, "access while one is pending");
        Cache &bank = bankFor(ref.addr);
        auto result = bank.cpuAccess(ref);
        if (!result.complete)
            pendingBank = &bank;
        return result;
    }

    /** True when the outstanding access has completed. */
    bool
    hasCompletion() const
    {
        return pendingBank != nullptr && pendingBank->hasCompletion();
    }

    /** Consume the completed access's result. */
    Cache::AccessResult
    takeCompletion()
    {
        ddc_assert(pendingBank != nullptr, "no pending access");
        auto result = pendingBank->takeCompletion();
        pendingBank = nullptr;
        return result;
    }

    /** True while an access is outstanding. */
    bool busy() const { return pendingBank != nullptr; }

    /** The bank that owns @p addr (block-granular interleaving). */
    Cache &
    bankFor(Addr addr)
    {
        // Single-bus configurations (the default) skip the modulo
        // routing; this sits on the per-reference fast path.
        if (banks.size() == 1)
            return *banks.front();
        auto block = static_cast<Addr>(banks.front()->blockWords());
        return *banks[static_cast<std::size_t>((addr / block) %
                                               banks.size())];
    }

  private:
    std::vector<Cache *> banks;
    Cache *pendingBank = nullptr;
};

} // namespace ddc

#endif // DDC_SIM_AGENT_HH
