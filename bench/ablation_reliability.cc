/**
 * @file
 * Ablation A4: memory reliability from cache replication (Section 8
 * future work, quantified).  "If the value of a variable is corrupted
 * while in memory or in some cache, there is a higher probability
 * that some cache contains a correct copy" (Section 5, arguing for
 * RWB).  For each scheme we run shared-data workloads, census the
 * live replicas of every shared word, and run a randomized
 * memory-fault-injection campaign measuring how many single-word
 * faults are repairable from cache copies.
 */

#include "bench_common.hh"

#include <iostream>

#include "reliability/replication.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

/** Run one (scheme, workload) point and report the replication data. */
exp::RunResult
measure(ProtocolKind kind, const Trace &trace, std::uint64_t footprint)
{
    SystemConfig config;
    config.num_pes = trace.numPes();
    config.cache_lines = 256;
    config.protocol = kind;
    System system(config);
    system.loadTrace(trace);
    system.run();

    std::vector<Addr> addrs;
    for (Addr a = 0; a < footprint; a++)
        addrs.push_back(sharedBase() + a);

    auto census = reliability::measureReplication(system, addrs);
    Rng rng(99);
    auto campaign =
        reliability::runMemoryFaultCampaign(system, addrs, 2000, rng);

    exp::RunResult result;
    result.cycles = system.now();
    result.total_refs = trace.totalRefs();
    result.bus_transactions = system.totalBusTransactions();
    result.setMetric("mean_copies", census.meanCopies());
    result.setMetric("redundant_fraction", census.redundantFraction());
    result.setMetric("recovery_rate", campaign.recoveryRate());
    return result;
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A4: replication-based memory reliability\n"
        "(Section 5/8: RWB's write broadcast keeps more live copies)\n\n"
        "For each scheme: mean correct copies per shared word (memory\n"
        "included), fraction of words with >=2 copies, and recovery\n"
        "rate over 2000 injected single-word memory faults.\n\n";

    struct Workload
    {
        const char *name;
        Trace trace;
        std::uint64_t footprint;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"producer_consumer",
                         makeProducerConsumerTrace(4, 16, 8, 2), 16});
    workloads.push_back({"migratory", makeMigratoryTrace(4, 8, 24), 8});
    workloads.push_back({"uniform_random",
                         makeUniformRandomTrace(4, 4000, 32, 0.3, 0.05,
                                                21),
                         32});
    auto kinds = allProtocolKinds();

    exp::ParamGrid grid;
    {
        std::vector<std::string> names;
        for (const auto &workload : workloads)
            names.push_back(workload.name);
        grid.axis("workload", names);
        std::vector<std::string> protocols;
        for (auto kind : kinds)
            protocols.push_back(std::string(toString(kind)));
        grid.axis("protocol", protocols);
    }

    exp::Experiment spec("ablation_reliability",
                         "A4: replica census and fault-injection "
                         "recovery rate by scheme and workload");
    for (std::size_t flat = 0; flat < grid.size(); flat++) {
        auto indices = grid.indicesAt(flat);
        auto kind = kinds[indices[1]];
        const auto &workload = workloads[indices[0]];
        Trace trace = workload.trace;
        auto footprint = workload.footprint;
        spec.addCustom(grid.paramsAt(flat), [kind, trace, footprint]() {
            return measure(kind, trace, footprint);
        });
    }
    const auto &results = session.run(spec);

    std::size_t flat = 0;
    for (const auto &workload : workloads) {
        Table table(std::string("Workload: ") + workload.name);
        table.setHeader({"scheme", "mean copies/word", ">=2 copies",
                         "fault recovery rate"});
        for (auto kind : kinds) {
            const auto &result = results[flat++];
            table.addRow({std::string(toString(kind)),
                          Table::num(result.metric("mean_copies"), 2),
                          Table::num(result.metric("redundant_fraction"),
                                     2),
                          Table::num(result.metric("recovery_rate"), 2)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout <<
        "Expected shape: RWB >= RB on every metric (update-broadcast\n"
        "keeps invalidated copies alive as replicas); CmStar is worst\n"
        "(shared words live only in memory).\n\n";
}

void
BM_ReplicationCensus(benchmark::State &state)
{
    auto trace = makeProducerConsumerTrace(4, 16, 8, 2);
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 256;
    config.protocol = ProtocolKind::Rwb;
    System system(config);
    system.loadTrace(trace);
    system.run();

    std::vector<Addr> addrs;
    for (Addr a = 0; a < 16; a++)
        addrs.push_back(sharedBase() + a);
    for (auto _ : state) {
        auto report = reliability::measureReplication(system, addrs);
        benchmark::DoNotOptimize(report.total_copies);
    }
}
BENCHMARK(BM_ReplicationCensus);

void
BM_FaultCampaign(benchmark::State &state)
{
    auto trace = makeProducerConsumerTrace(4, 16, 8, 2);
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 256;
    config.protocol = ProtocolKind::Rwb;
    System system(config);
    system.loadTrace(trace);
    system.run();

    std::vector<Addr> addrs;
    for (Addr a = 0; a < 16; a++)
        addrs.push_back(sharedBase() + a);
    Rng rng(5);
    for (auto _ : state) {
        auto result =
            reliability::runMemoryFaultCampaign(system, addrs, 100, rng);
        benchmark::DoNotOptimize(result.recovered);
    }
}
BENCHMARK(BM_FaultCampaign);

} // namespace

DDC_BENCH_MAIN(printReproduction)
