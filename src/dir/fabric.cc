#include "dir/fabric.hh"

#include <chrono>

#include "base/logging.hh"

namespace ddc {
namespace dir {

DirectoryFabric::DirectoryFabric(int home_nodes,
                                 ArbiterKind arbiter_kind,
                                 std::uint64_t arbiter_seed,
                                 stats::CounterSet &stats)
    : homesPow2(home_nodes >= 1 &&
                (home_nodes & (home_nodes - 1)) == 0),
      homeMask(static_cast<Addr>(home_nodes) - 1), stats(stats)
{
    ddc_assert(home_nodes >= 1, "need at least one home node");
    homes.reserve(static_cast<std::size_t>(home_nodes));
    for (int h = 0; h < home_nodes; h++) {
        homes.push_back(std::make_unique<HomeNode>(h, arbiter_kind,
                                                   arbiter_seed, stats));
    }
    statIdle = stats.intern("bus.idle_cycles");
}

int
DirectoryFabric::attach(BusClient *client)
{
    ddc_assert(client != nullptr, "null fabric client");
    clients.push_back(client);
    armed.push_back(1);
    armedCount.fetch_add(1, std::memory_order_relaxed);
    armEvents.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(clients.size()) - 1;
}

void
DirectoryFabric::setRequestArmed(int client, bool is_armed)
{
    auto index = static_cast<std::size_t>(client);
    ddc_assert(index < clients.size(), "bad fabric client index ",
               client);
    char flag = is_armed ? 1 : 0;
    if (armed[index] == flag)
        return;
    armed[index] = flag;
    if (is_armed) {
        armedCount.fetch_add(1, std::memory_order_relaxed);
        armEvents.fetch_add(1, std::memory_order_relaxed);
    } else {
        armedCount.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
DirectoryFabric::setObserver(obs::Recorder *recorder,
                             const Clock *machine_clock)
{
    if (recorder == nullptr)
        return;
    // Homes tick on the serial shard, so all directory streams are
    // shard 0's.
    homeObs.trace = recorder->trace(obs::Category::Dir, 0);
    homeObs.metrics = recorder->metricsLane(0);
    homeObs.clock = machine_clock;
    if (homeObs.metrics) {
        requestStart.assign(clients.size(), kNever);
        homeObs.requestStart = &requestStart;
    }
    if (homeObs.trace == nullptr && homeObs.metrics == nullptr)
        return;
    for (auto &home : homes)
        home->setObserver(&homeObs);
}

void
DirectoryFabric::tick()
{
    using clock = std::chrono::steady_clock;
    clock::time_point routeStart;
    if (profile)
        routeStart = clock::now();

    // ---- Route phase: O(armed), not O(clients). -------------------
    // A stale dense list only ever *over*-covers the armed set (a
    // disarm leaves its entry behind until compacted; an arm bumps
    // armEvents and forces a rebuild below), so walking it visits
    // every armed client, in ascending order — exactly the snooping
    // bus's requester collection.  Routing happens on the side-
    // effect-free pendingAddr (hasRequest may lazily resolve
    // forwards, so it runs first, exactly once, like on the bus).
    std::size_t posted = 0;
    if (armedClients() > 0 || !armedList.empty()) {
        std::uint64_t events =
            armEvents.load(std::memory_order_relaxed);
        if (events != seenArmEvents) {
            seenArmEvents = events;
            armedList.clear();
            for (std::size_t i = 0; i < clients.size(); i++) {
                if (armed[i])
                    armedList.push_back(static_cast<int>(i));
            }
        }
        std::size_t kept = 0;
        for (int c : armedList) {
            auto index = static_cast<std::size_t>(c);
            if (!armed[index])
                continue; // Disarmed since the last pass; compact.
            // Keep the entry *before* polling: hasRequest may disarm
            // the client mid-call (local resolution), and dropping it
            // here while its slot re-arms later the same cycle would
            // lose it.  The stale entry costs one compaction check.
            armedList[kept++] = c;
            if (!clients[index]->hasRequest())
                continue;
            int h = homeOf(clients[index]->pendingAddr());
            HomeNode &target = *homes[static_cast<std::size_t>(h)];
            if (target.inboxEmpty())
                touchedHomes.push_back(h);
            target.post(c);
            posted++;
            // Stamp the first routing of this pending request; the
            // serving home clears the mark at completion
            // (home_service latency), so reposted retries keep it.
            if (homeObs.requestStart != nullptr &&
                requestStart[index] == kNever)
                requestStart[index] = homeObs.clock->now;
        }
        armedList.resize(kept);
    }
    lastRoutingPosted = posted;

    clock::time_point serveStart;
    if (profile) {
        serveStart = clock::now();
        profile->fabric_route_ms +=
            std::chrono::duration<double, std::milli>(serveStart -
                                                      routeStart)
                .count();
    }

    // ---- Serve phase: tick only the touched homes, in ascending id
    // order (clusters must observe cross-home deliveries in the same
    // order as the dense scan); batch the rest's idle accounting
    // through the shared counter handle.
    std::sort(touchedHomes.begin(), touchedHomes.end());
    for (int h : touchedHomes) {
        homes[static_cast<std::size_t>(h)]->tick(clients, visitCount);
        homes[static_cast<std::size_t>(h)]->clearInbox();
    }
    std::size_t untouched = homes.size() - touchedHomes.size();
    if (untouched > 0)
        stats.add(statIdle, untouched);
    touchedHomes.clear();

    if (profile) {
        profile->fabric_serve_ms +=
            std::chrono::duration<double, std::milli>(clock::now() -
                                                      serveStart)
                .count();
    }
}

void
DirectoryFabric::skipCycles(Cycle count)
{
    // Skips cross only intervals where our nextEventCycle reported
    // kNever: no armed client at all, or a quiescent routing pass
    // (nothing posted, no arm event since).  Lookahead windows also
    // land here — the kernel bulk-skips the serial shard across each
    // window before releasing the lanes, so the armEvents read below
    // never races a cluster's arm.
    ddc_assert(armedClients() == 0 ||
                   (lastRoutingPosted == 0 &&
                    armEvents.load(std::memory_order_relaxed) ==
                        seenArmEvents),
               "skipped across a home-node grant opportunity");
    if (count > 0)
        stats.add(statIdle, count * homes.size());
}

Word
DirectoryFabric::memoryValue(Addr addr) const
{
    return homes[static_cast<std::size_t>(homeOf(addr))]
        ->memoryBank()
        .peek(addr);
}

void
DirectoryFabric::pokeMemory(Addr addr, Word value)
{
    homes[static_cast<std::size_t>(homeOf(addr))]->memoryBank().poke(
        addr, value);
}

std::size_t
DirectoryFabric::directoryBlocks() const
{
    std::size_t total = 0;
    for (const auto &home : homes)
        total += home->directory().blocks();
    return total;
}

std::uint64_t
DirectoryFabric::maxHomeMessages() const
{
    std::uint64_t peak = 0;
    for (const auto &home : homes)
        peak = std::max(peak, home->messages());
    return peak;
}

double
DirectoryFabric::meanHomeMessages() const
{
    std::uint64_t total = 0;
    for (const auto &home : homes)
        total += home->messages();
    return static_cast<double>(total) /
           static_cast<double>(homes.size());
}

double
DirectoryFabric::maxLoadFactor() const
{
    double peak = 0.0;
    for (const auto &home : homes) {
        peak = std::max(peak, home->directory().peakLoadFactor());
        peak = std::max(peak, home->memoryBank().peakLoadFactor());
    }
    return peak;
}

} // namespace dir
} // namespace ddc
