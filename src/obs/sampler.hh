/**
 * @file
 * Time-series counter sampling (--sample-every=N): snapshots
 * registered columns every N cycles so benches can separate warm-up
 * from steady state.  Columns are registered once at System
 * construction; sampling reads them through stored callbacks, so the
 * run loop's disabled path is a single null-pointer test.
 */

#ifndef DDC_OBS_SAMPLER_HH
#define DDC_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace ddc {
namespace obs {

/** One recorded sample row: cycle + the value of every column. */
struct SampleRow
{
    Cycle cycle = 0;
    std::vector<std::uint64_t> values;
};

/** The collected series: column names plus rows, oldest first. */
struct SampleSeries
{
    Cycle interval = 0;
    std::vector<std::string> columns;
    std::vector<SampleRow> rows;

    bool empty() const { return rows.empty(); }
};

/**
 * Snapshots cumulative counters on a fixed cycle interval.
 *
 * Values are cumulative (as the underlying counters are); consumers
 * difference adjacent rows to get per-interval rates, which keeps
 * sampling itself allocation-light and cheap.
 */
class CounterSampler
{
  public:
    /** Reads one value at the sample cycle it is passed. */
    using Column = std::function<std::uint64_t(Cycle)>;

    explicit CounterSampler(Cycle interval) : every(interval) {}

    /** Register a column; call only before the run starts. */
    void
    addColumn(std::string name, Column read)
    {
        names.push_back(std::move(name));
        readers.push_back(std::move(read));
    }

    Cycle interval() const { return every; }

    /** True when @p now has reached the next sampling point. */
    bool due(Cycle now) const { return every > 0 && now >= next; }

    /**
     * The next scheduled sample cycle.  The kernel clamps quiescent
     * skips and lookahead windows to this bound so rows land exactly
     * on the sampling grid regardless of lane count.
     */
    Cycle nextAt() const { return next; }

    /**
     * Record one row at @p now and schedule the next sample.  Safe
     * to call after a quiescent skip jumped past several points: one
     * row is recorded and the schedule realigns to the grid.
     */
    void
    sample(Cycle now)
    {
        SampleRow row;
        row.cycle = now;
        row.values.reserve(readers.size());
        for (const Column &read : readers)
            row.values.push_back(read(now));
        recorded.rows.push_back(std::move(row));
        next = (now / every + 1) * every;
    }

    /** The series collected so far (columns + rows). */
    const SampleSeries &
    series()
    {
        recorded.interval = every;
        recorded.columns = names;
        return recorded;
    }

  private:
    Cycle every;
    Cycle next = 0;
    std::vector<std::string> names;
    std::vector<Column> readers;
    SampleSeries recorded;
};

} // namespace obs
} // namespace ddc

#endif // DDC_OBS_SAMPLER_HH
