#include "sim/system.hh"

#include <algorithm>
#include <array>
#include <string>

#include "base/logging.hh"
#include "sim/trace_agent.hh"

namespace ddc {

System::System(const SystemConfig &config)
    : config(config),
      kernel(clock, KernelConfig{1, true, config.skip_quiescent})
{
    ddc_assert(config.num_pes >= 1, "need at least one PE");
    ddc_assert(config.num_buses >= 1, "need at least one bus");
    ddc_assert(config.cache_lines >= 1, "need at least one cache line");
    ddc_assert(config.block_words >= 1, "need at least one word per block");

    proto = makeProtocol(config.protocol, config.rwb_writes_to_local);

    auto num_pes = static_cast<std::size_t>(config.num_pes);
    shard = &kernel.makeShard(config.arbiter_seed, num_pes);

    for (int b = 0; b < config.num_buses; b++) {
        busStats.push_back(std::make_unique<stats::CounterSet>());
        memories.push_back(std::make_unique<Memory>(*busStats.back()));
        buses.push_back(std::make_unique<Bus>(
            *memories.back(), config.arbiter, shard->localClock(),
            *busStats.back(),
            config.arbiter_seed + static_cast<std::uint64_t>(b),
            config.block_words, config.memory_latency,
            config.snoop_filter));
        shard->addComponent(buses.back().get());
    }

    ExecutionLog *log = config.record_log ? &execLog : nullptr;
    for (PeId pe = 0; pe < config.num_pes; pe++) {
        for (int b = 0; b < config.num_buses; b++) {
            caches.push_back(std::make_unique<Cache>(
                pe, config.cache_lines, *proto, shard->localClock(),
                cacheStats, log, config.block_words, config.ways));
            caches.back()->connectBus(*buses[static_cast<std::size_t>(b)]);
            caches.back()->setWakeFlag(
                shard->wakeFlag(static_cast<std::size_t>(pe)));
        }
    }
    agents.resize(num_pes);

    static constexpr std::string_view kMissPrefixes[] = {
        "cache.read_miss.", "cache.write_miss.", "cache.ts.",
        "cache.readlock.", "cache.writeunlock."};
    static constexpr std::string_view kClasses[] = {"Code", "Local",
                                                    "Shared"};
    for (auto prefix : kMissPrefixes) {
        for (auto cls : kClasses) {
            missStats.push_back(cacheStats.intern(std::string(prefix) +
                                                  std::string(cls)));
        }
    }

    recorder = obs::makeRecorder(config.histograms, config.sample_every);
    obs::CounterSampler *sampler = nullptr;
    if (recorder) {
        for (int b = 0; b < config.num_buses; b++)
            buses[static_cast<std::size_t>(b)]->setObserver(
                recorder.get(), b);
        for (auto &cache : caches)
            cache->setObserver(recorder.get());
        kernel.setQuiesceSink(recorder->trace(obs::Category::Quiesce));
        if (recorder->trace(obs::Category::Kernel) != nullptr)
            kernel.setKernelTrace(recorder->sink());
        kernel.setProfile(recorder->profile());
        sampler = recorder->sampler();
        kernel.setSampler(sampler);
    }
    if (sampler) {
        for (int b = 0; b < config.num_buses; b++) {
            auto *bus_stats = busStats[static_cast<std::size_t>(b)].get();
            auto busy = bus_stats->intern("bus.busy_cycles");
            sampler->addColumn(
                "bus" + std::to_string(b) + ".busy_cycles",
                [bus_stats, busy](Cycle) {
                    return bus_stats->get(busy);
                });
        }
        auto refs = cacheStats.intern("cache.refs");
        sampler->addColumn("refs", [this, refs](Cycle) {
            return cacheStats.get(refs);
        });
        sampler->addColumn("miss_refs",
                           [this](Cycle) { return missRefs(); });
        // One census scan per sample, shared by the eight per-tag
        // columns through a cycle-stamped buffer.
        struct Census
        {
            Cycle at = kNever;
            std::array<std::uint64_t, Cache::kNumTags> counts{};
        };
        auto census = std::make_shared<Census>();
        for (std::size_t t = 0; t < Cache::kNumTags; t++) {
            sampler->addColumn(
                "tags." +
                    std::string(toString(static_cast<LineTag>(t))),
                [this, census, t](Cycle at) {
                    if (census->at != at) {
                        census->counts.fill(0);
                        for (auto &cache : caches)
                            cache->addTagCensus(census->counts.data());
                        census->at = at;
                    }
                    return census->counts[t];
                });
        }
    }
}

CacheSet
System::cacheSetFor(PeId pe)
{
    std::vector<Cache *> banks;
    for (int b = 0; b < config.num_buses; b++) {
        banks.push_back(
            caches[static_cast<std::size_t>(pe * config.num_buses + b)]
                .get());
    }
    return CacheSet(std::move(banks));
}

void
System::loadTrace(const Trace &trace)
{
    ddc_assert(trace.numPes() <= config.num_pes,
               "trace has more PE streams than the system has PEs");
    for (PeId pe = 0; pe < config.num_pes; pe++) {
        std::vector<MemRef> stream;
        if (pe < trace.numPes())
            stream = trace.stream(pe);
        agents[static_cast<std::size_t>(pe)] = std::make_unique<TraceAgent>(
            pe, cacheSetFor(pe), std::move(stream), cacheStats);
        shard->setAgent(static_cast<std::size_t>(pe),
                        agents[static_cast<std::size_t>(pe)].get());
    }
    shard->rebuild();
}

void
System::setProgram(PeId pe, Program program)
{
    ddc_assert(pe >= 0 && pe < config.num_pes, "PE id out of range");
    agents[static_cast<std::size_t>(pe)] = std::make_unique<Processor>(
        pe, cacheSetFor(pe), std::move(program), cacheStats);
    shard->setAgent(static_cast<std::size_t>(pe),
                    agents[static_cast<std::size_t>(pe)].get());
    shard->rebuild();
}

Processor &
System::processor(PeId pe)
{
    ddc_assert(pe >= 0 && pe < config.num_pes, "PE id out of range");
    auto *agent = agents[static_cast<std::size_t>(pe)].get();
    auto *processor = dynamic_cast<Processor *>(agent);
    if (processor == nullptr)
        ddc_fatal("PE ", pe, " is not running a program");
    return *processor;
}

void
System::tick()
{
    kernel.tickOnce();
}

Cycle
System::run(Cycle max_cycles)
{
    Cycle start = clock.now;
    run_status = kernel.run(max_cycles);
    if (run_status == RunStatus::TimedOut) {
        ddc_warn("System::run hit its cycle budget (", max_cycles,
                 " cycles) with agents still busy; reporting timed_out");
    }
    return clock.now - start;
}

bool
System::allDone() const
{
    return kernel.allDone();
}

const Cache &
System::cacheBank(PeId pe, Addr addr) const
{
    ddc_assert(pe >= 0 && pe < config.num_pes, "PE id out of range");
    // Interleave across buses at block granularity so a block never
    // straddles two banks (with one-word blocks this is the paper's
    // least-significant-address-bit split).
    int bank = static_cast<int>(
        (addr / static_cast<Addr>(config.block_words)) %
        static_cast<Addr>(config.num_buses));
    return *caches[static_cast<std::size_t>(pe * config.num_buses + bank)];
}

LineState
System::lineState(PeId pe, Addr addr) const
{
    return cacheBank(pe, addr).lineState(addr);
}

Word
System::cacheValue(PeId pe, Addr addr) const
{
    return cacheBank(pe, addr).lineValue(addr);
}

Word
System::memoryValue(Addr addr) const
{
    auto bank = static_cast<std::size_t>(
        (addr / static_cast<Addr>(config.block_words)) %
        static_cast<Addr>(config.num_buses));
    return memories[bank]->peek(addr);
}

void
System::pokeMemory(Addr addr, Word value)
{
    auto bank = static_cast<std::size_t>(
        (addr / static_cast<Addr>(config.block_words)) %
        static_cast<Addr>(config.num_buses));
    memories[bank]->poke(addr, value);
}

Word
System::coherentValue(Addr addr) const
{
    for (PeId pe = 0; pe < config.num_pes; pe++) {
        if (proto->needsWriteback(lineState(pe, addr)))
            return cacheValue(pe, addr);
    }
    return memoryValue(addr);
}

stats::CounterSet
System::counters() const
{
    flushStalls();
    stats::CounterSet merged;
    merged.merge(cacheStats);
    for (const auto &bus_stats : busStats)
        merged.merge(*bus_stats);
    return merged;
}

const stats::CounterSet &
System::busCounters(int bus) const
{
    ddc_assert(bus >= 0 && bus < config.num_buses, "bus index out of range");
    return *busStats[static_cast<std::size_t>(bus)];
}

std::uint64_t
System::totalBusTransactions() const
{
    std::uint64_t total = 0;
    for (const auto &bus_stats : busStats)
        total += bus_stats->get("bus.busy_cycles");
    return total;
}

std::uint64_t
System::snoopVisits() const
{
    std::uint64_t total = 0;
    for (const auto &bus : buses)
        total += bus->snoopVisits();
    return total;
}

std::uint64_t
System::snoopFilterFallbacks() const
{
    std::uint64_t total = 0;
    for (const auto &bus : buses)
        total += bus->snoopFilterFallbacks();
    return total;
}

std::uint64_t
System::missRefs() const
{
    std::uint64_t total = 0;
    for (auto id : missStats)
        total += cacheStats.get(id);
    return total;
}

} // namespace ddc
