#include "sync/programs.hh"

#include "base/logging.hh"

namespace ddc {
namespace sync {

namespace {

// Register conventions used by the generated programs.
constexpr int rLockAddr = 1;
constexpr int rOne = 2;
constexpr int rTmp = 3;
constexpr int rSense = 4;
constexpr int rIters = 5;
constexpr int rCountAddr = 6;
constexpr int rAux = 7;
constexpr int rDiff = 8;
constexpr int rN = 9;
constexpr int rCsIters = 10;
constexpr int rZero = 11;
constexpr int rWorkAddr = 12;
constexpr int rWorkIters = 13;

/** Emit a lock acquisition loop ending with the lock held. */
void
emitAcquire(ProgramBuilder &builder, LockKind kind,
            const std::string &label_prefix)
{
    std::string retry = label_prefix + ".retry";
    builder.label(retry);
    if (kind == LockKind::TestAndTestAndSet) {
        // The test: an ordinary cached read; spins stay in the cache
        // while the lock is held elsewhere.
        builder.load(rTmp, rLockAddr)
            .branchIfNotZero(rTmp, retry);
    }
    // The test-and-set: an atomic bus RMW.
    builder.testAndSet(rTmp, rLockAddr, rOne)
        .branchIfNotZero(rTmp, retry);
}

} // namespace

std::string_view
toString(LockKind kind)
{
    switch (kind) {
      case LockKind::TestAndSet:        return "TS";
      case LockKind::TestAndTestAndSet: return "TTS";
    }
    return "?";
}

Program
makeLockProgram(const LockProgramParams &params)
{
    ddc_assert(params.acquisitions >= 1, "need at least one acquisition");
    ddc_assert(params.lock_addr != params.counter_addr,
               "lock and counter must be distinct words");

    ProgramBuilder builder;
    builder.loadImm(rLockAddr, static_cast<std::int64_t>(params.lock_addr))
        .loadImm(rOne, 1)
        .loadImm(rZero, 0)
        .loadImm(rCountAddr,
                 static_cast<std::int64_t>(params.counter_addr))
        .loadImm(rIters, params.acquisitions);

    builder.label("outer");
    emitAcquire(builder, params.kind, "acq");

    // Critical section: increment the shared counter cs_increments
    // times; non-atomic load/add/store made safe only by the lock.
    if (params.cs_increments > 0) {
        builder.loadImm(rCsIters, params.cs_increments);
        builder.label("cs");
        builder.load(rTmp, rCountAddr)
            .addImm(rTmp, rTmp, 1)
            .store(rCountAddr, rTmp)
            .addImm(rCsIters, rCsIters, -1)
            .branchIfNotZero(rCsIters, "cs");
    }

    // Release: an ordinary write of zero.
    builder.store(rLockAddr, rZero);

    // Local work between acquisitions (private-region writes).
    if (params.local_work > 0) {
        builder
            .loadImm(rWorkAddr,
                     static_cast<std::int64_t>(params.local_base))
            .loadImm(rWorkIters, params.local_work);
        builder.label("work");
        builder.store(rWorkAddr, rWorkIters, 0, DataClass::Local)
            .addImm(rWorkAddr, rWorkAddr, 1)
            .addImm(rWorkIters, rWorkIters, -1)
            .branchIfNotZero(rWorkIters, "work");
    }

    builder.addImm(rIters, rIters, -1)
        .branchIfNotZero(rIters, "outer")
        .halt();
    return builder.build();
}

Program
makeBarrierProgram(Addr lock_addr, Addr count_addr, Addr sense_addr,
                   int num_pes, int iterations)
{
    ddc_assert(num_pes >= 1, "barrier needs at least one PE");
    ddc_assert(iterations >= 1, "need at least one barrier episode");

    ProgramBuilder builder;
    builder.loadImm(rLockAddr, static_cast<std::int64_t>(lock_addr))
        .loadImm(rOne, 1)
        .loadImm(rZero, 0)
        .loadImm(rCountAddr, static_cast<std::int64_t>(count_addr))
        .loadImm(rAux, static_cast<std::int64_t>(sense_addr))
        .loadImm(rN, num_pes)
        .loadImm(rSense, 0)
        .loadImm(rIters, iterations);

    builder.label("episode");
    emitAcquire(builder, LockKind::TestAndTestAndSet, "bar");

    // count++ under the lock.
    builder.load(rTmp, rCountAddr)
        .addImm(rTmp, rTmp, 1)
        .store(rCountAddr, rTmp)
        .sub(rDiff, rTmp, rN)
        .branchIfZero(rDiff, "last");

    // Not the last arriver: release, then spin until the sense flips.
    builder.store(rLockAddr, rZero);
    builder.label("spin");
    builder.load(rTmp, rAux)
        .sub(rDiff, rTmp, rSense)
        .branchIfZero(rDiff, "spin")
        .jump("joined");

    // Last arriver: reset the counter, flip the sense, release.
    builder.label("last");
    builder.store(rCountAddr, rZero)
        .loadImm(rDiff, 1)
        .sub(rDiff, rDiff, rSense)
        .store(rAux, rDiff)
        .store(rLockAddr, rZero);

    builder.label("joined");
    // my_sense = 1 - my_sense.
    builder.loadImm(rDiff, 1)
        .sub(rDiff, rDiff, rSense)
        .move(rSense, rDiff)
        .addImm(rIters, rIters, -1)
        .branchIfNotZero(rIters, "episode")
        .halt();
    return builder.build();
}

} // namespace sync
} // namespace ddc
