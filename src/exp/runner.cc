#include "exp/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "base/logging.hh"
#include "core/simulator.hh"

namespace ddc {
namespace exp {

RunResult
executeTraceRun(const TraceRun &run)
{
    auto summary = runTrace(run.config, run.trace, run.check_consistency,
                            run.max_cycles);

    RunResult result;
    result.status = summary.status;
    result.cycles = summary.cycles;
    result.skipped_cycles = summary.skipped_cycles;
    result.snoop_visits = summary.snoop_visits;
    result.snoop_filter_fallbacks = summary.snoop_filter_fallbacks;
    result.sim_time_ms = summary.sim_time_ms;
    result.total_refs = summary.total_refs;
    result.bus_transactions = summary.bus_transactions;
    result.consistent = summary.consistent;
    result.counters = summary.counters;
    if (summary.has_histograms)
        result.histograms = histogramsJson(summary.histograms);
    if (!summary.samples.empty())
        result.samples = samplesJson(summary.samples);
    result.setMetric("bus_per_ref", summary.bus_per_ref);
    result.setMetric("miss_ratio", summary.miss_ratio);
    if (summary.per_bus_busy_cycles.size() > 1) {
        for (std::size_t b = 0; b < summary.per_bus_busy_cycles.size();
             b++) {
            result.counters.add("bus" + std::to_string(b) +
                                    ".busy_cycles",
                                summary.per_bus_busy_cycles[b]);
        }
    }
    return result;
}

std::vector<RunResult>
runExperiment(const Experiment &experiment, const RunnerOptions &options)
{
    const auto &points = experiment.points();
    std::vector<RunResult> results(points.size());

    auto execute = [&results, &points](std::size_t i) {
        const auto &point = points[i];
        auto start = std::chrono::steady_clock::now();
        RunResult result =
            point.make ? executeTraceRun(point.make()) : point.custom();
        std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        result.wall_time_ms = elapsed.count();
        // Rate the simulation loop itself when the point reports a
        // breakdown; point setup (trace materialization, machine
        // construction) would otherwise dilute throughput ratios.
        double denom_ms = result.sim_time_ms > 0.0 ? result.sim_time_ms
                                                   : elapsed.count();
        if (denom_ms > 0.0) {
            result.sim_cycles_per_sec =
                static_cast<double>(result.cycles) / (denom_ms / 1000.0);
        }
        result.index = i;
        result.params = point.params;
        results[i] = std::move(result);
    };

    ddc_assert(options.jobs >= 1, "need at least one worker");
    std::size_t jobs =
        std::min(static_cast<std::size_t>(options.jobs),
                 std::max<std::size_t>(points.size(), 1));

    if (jobs <= 1) {
        for (std::size_t i = 0; i < points.size(); i++)
            execute(i);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::size_t w = 0; w < jobs; w++) {
        workers.emplace_back([&next, &points, &execute]() {
            for (std::size_t i; (i = next.fetch_add(1)) < points.size();)
                execute(i);
        });
    }
    for (auto &worker : workers)
        worker.join();
    return results;
}

} // namespace exp
} // namespace ddc
