/**
 * @file
 * Shared scaffolding for the reproduction benches.
 *
 * Every bench binary (a) prints its paper table/figure reproduction
 * when run, then (b) runs its google-benchmark timing sweeps.  The
 * DDC_BENCH_MAIN macro wires that order up.
 */

#ifndef DDC_BENCH_COMMON_HH
#define DDC_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <iostream>

/** Print the reproduction, then run the registered benchmarks. */
#define DDC_BENCH_MAIN(print_reproduction)                                  \
    int                                                                     \
    main(int argc, char **argv)                                             \
    {                                                                       \
        print_reproduction();                                               \
        std::cout.flush();                                                  \
        benchmark::Initialize(&argc, argv);                                 \
        if (benchmark::ReportUnrecognizedArguments(argc, argv))             \
            return 1;                                                       \
        benchmark::RunSpecifiedBenchmarks();                                \
        benchmark::Shutdown();                                              \
        return 0;                                                           \
    }

#endif // DDC_BENCH_COMMON_HH
