#include "sim/scenario.hh"

#include <sstream>

#include "base/logging.hh"

namespace ddc {

Scenario::Scenario(ProtocolKind kind, int num_caches,
                   std::size_t cache_lines, int rwb_writes_to_local,
                   std::size_t block_words)
    : protocol(makeProtocol(kind, rwb_writes_to_local)),
      memory(stats),
      bus(memory, ArbiterKind::RoundRobin, clock, stats, 0, block_words)
{
    ddc_assert(num_caches >= 1, "need at least one cache");
    for (PeId pe = 0; pe < num_caches; pe++) {
        caches.push_back(std::make_unique<Cache>(
            pe, cache_lines, *protocol, clock, stats, &execLog,
            block_words));
        caches.back()->connectBus(bus);
    }
}

Cache::AccessResult
Scenario::run(PeId pe, const MemRef &ref)
{
    ddc_assert(pe >= 0 && pe < numCaches(), "PE id out of range");
    Cache &cache = *caches[static_cast<std::size_t>(pe)];
    auto result = cache.cpuAccess(ref);
    if (result.complete)
        return result;
    for (int i = 0; i < 1000; i++) {
        if (cache.hasCompletion())
            return cache.takeCompletion();
        bus.tick();
        clock.now++;
    }
    ddc_panic("scenario access failed to complete");
}

Word
Scenario::read(PeId pe, Addr addr)
{
    return run(pe, {CpuOp::Read, addr, 0, DataClass::Shared}).value;
}

void
Scenario::write(PeId pe, Addr addr, Word data)
{
    run(pe, {CpuOp::Write, addr, data, DataClass::Shared});
}

Cache::AccessResult
Scenario::testAndSet(PeId pe, Addr addr, Word data)
{
    return run(pe, {CpuOp::TestAndSet, addr, data, DataClass::Shared});
}

LineState
Scenario::state(PeId pe, Addr addr) const
{
    return caches[static_cast<std::size_t>(pe)]->lineState(addr);
}

Word
Scenario::value(PeId pe, Addr addr) const
{
    return caches[static_cast<std::size_t>(pe)]->lineValue(addr);
}

Word
Scenario::memoryValue(Addr addr) const
{
    return memory.peek(addr);
}

std::uint64_t
Scenario::busTransactions() const
{
    return stats.get("bus.busy_cycles");
}

std::string
Scenario::row(Addr addr) const
{
    std::ostringstream os;
    for (int pe = 0; pe < numCaches(); pe++) {
        LineState line = state(pe, addr);
        os << toString(line) << "(";
        if (line.present()) {
            os << value(pe, addr);
        } else {
            os << "-";
        }
        os << ")";
        if (pe + 1 < numCaches())
            os << "  ";
    }
    os << "  | S=" << memoryValue(addr);
    return os.str();
}

} // namespace ddc
