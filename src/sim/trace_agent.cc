#include "sim/trace_agent.hh"

namespace ddc {

TraceAgent::TraceAgent(PeId pe, CacheSet caches, std::vector<MemRef> stream,
                       stats::CounterSet &stats)
    : pe(pe), caches(std::move(caches)), stream(std::move(stream)),
      stats(stats)
{
    (void)this->pe;
    statStallCycles = stats.intern("pe.stall_cycles");
}

bool
TraceAgent::done() const
{
    return !waiting && next >= stream.size();
}

void
TraceAgent::skipCycles(Cycle count)
{
    ddc_assert(waiting && !caches.hasCompletion(),
               "skipped a runnable trace agent");
    stats.add(statStallCycles, count);
}

void
TraceAgent::addStallCycles(Cycle count)
{
    stats.add(statStallCycles, count);
}

void
TraceAgent::tick()
{
    if (waiting) {
        if (!caches.hasCompletion()) {
            stats.add(statStallCycles);
            return;
        }
        caches.takeCompletion();
        waiting = false;
        completed++;
        return;
    }
    if (next >= stream.size())
        return;

    auto result = caches.access(stream[next]);
    next++;
    if (result.complete) {
        completed++;
    } else {
        waiting = true;
        stats.add(statStallCycles);
    }
}

} // namespace ddc
