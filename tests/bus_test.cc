/**
 * @file
 * Unit tests for the shared bus: arbitration, execution of every
 * transaction kind, snoop broadcast, the kill/supply path, Rmw
 * resolution, and NACKs on locked words.
 */

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <string>

#include "sim/bus.hh"
#include "sim/memory.hh"

namespace ddc {
namespace {

/** Scriptable bus client recording everything the bus does to it. */
class FakeClient : public BusClient
{
  public:
    explicit FakeClient(PeId pe) : pe(pe) {}

    bool hasRequest() override { return !requests.empty(); }

    BusRequest currentRequest() override { return requests.front(); }

    void
    requestComplete(const BusResult &result) override
    {
        completions.push_back(result);
        requests.pop_front();
    }

    bool
    wouldSupply(Addr addr, Word &value) override
    {
        if (supply_addr && *supply_addr == addr) {
            value = supply_value;
            return true;
        }
        return false;
    }

    void observe(const BusTransaction &txn) override
    {
        observed.push_back(txn);
    }

    void supplied(Addr addr) override { supplied_addrs.push_back(addr); }

    PeId peId() const override { return pe; }

    void push(BusRequest request) { requests.push_back(request); }

    PeId pe;
    std::deque<BusRequest> requests;
    std::vector<BusResult> completions;
    std::vector<BusTransaction> observed;
    std::vector<Addr> supplied_addrs;
    std::optional<Addr> supply_addr;
    Word supply_value = 0;
};

class BusTest : public ::testing::Test
{
  protected:
    BusTest() : memory(stats), bus(memory, ArbiterKind::RoundRobin, clock,
                                   stats)
    {
        for (auto &client : clients)
            bus.attach(&client);
    }

    stats::CounterSet stats;
    Clock clock;
    Memory memory;
    Bus bus;
    FakeClient clients[3] = {FakeClient(0), FakeClient(1), FakeClient(2)};
};

TEST_F(BusTest, IdleCycleWhenNoRequests)
{
    EXPECT_TRUE(bus.idle());
    bus.tick();
    EXPECT_EQ(stats.get("bus.idle_cycles"), 1u);
    EXPECT_EQ(stats.get("bus.busy_cycles"), 0u);
}

TEST_F(BusTest, ReadReturnsMemoryValueAndBroadcasts)
{
    memory.write(10, 77);
    clients[0].push({BusOp::Read, 10, 0});
    bus.tick();

    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_EQ(clients[0].completions[0].data, 77u);
    // Both other clients observed the read with its data.
    for (int i : {1, 2}) {
        ASSERT_EQ(clients[i].observed.size(), 1u);
        EXPECT_EQ(clients[i].observed[0].op, BusOp::Read);
        EXPECT_EQ(clients[i].observed[0].data, 77u);
        EXPECT_EQ(clients[i].observed[0].issuer, 0);
    }
    EXPECT_TRUE(clients[0].observed.empty()); // never your own txn
    EXPECT_EQ(stats.get("bus.read"), 1u);
}

TEST_F(BusTest, WriteUpdatesMemoryAndBroadcasts)
{
    clients[1].push({BusOp::Write, 5, 99});
    bus.tick();
    EXPECT_EQ(memory.peek(5), 99u);
    ASSERT_EQ(clients[0].observed.size(), 1u);
    EXPECT_EQ(clients[0].observed[0].op, BusOp::Write);
    EXPECT_EQ(clients[0].observed[0].data, 99u);
    ASSERT_EQ(clients[1].completions.size(), 1u);
    EXPECT_EQ(clients[1].completions[0].data, 99u);
}

TEST_F(BusTest, InvalidateCarriesDataAndIsSnoopedAsInvalidate)
{
    clients[0].push({BusOp::Invalidate, 3, 11});
    bus.tick();
    EXPECT_EQ(memory.peek(3), 11u);
    ASSERT_EQ(clients[2].observed.size(), 1u);
    EXPECT_EQ(clients[2].observed[0].op, BusOp::Invalidate);
    EXPECT_EQ(stats.get("bus.invalidate"), 1u);
}

TEST_F(BusTest, OneTransactionPerCycle)
{
    clients[0].push({BusOp::Write, 1, 1});
    clients[1].push({BusOp::Write, 2, 2});
    bus.tick();
    EXPECT_EQ(clients[0].completions.size() + clients[1].completions.size(),
              1u);
    bus.tick();
    EXPECT_EQ(clients[0].completions.size() + clients[1].completions.size(),
              2u);
}

TEST_F(BusTest, KillAndSupplyReplacesRead)
{
    // Client 2 owns addr 8 with value 123; client 0 tries to read it.
    clients[2].supply_addr = 8;
    clients[2].supply_value = 123;
    clients[0].push({BusOp::Read, 8, 0});
    bus.tick();

    // The read did not complete; the supply write did.
    EXPECT_TRUE(clients[0].completions.empty());
    EXPECT_TRUE(clients[0].hasRequest());
    EXPECT_EQ(memory.peek(8), 123u);
    ASSERT_EQ(clients[2].supplied_addrs.size(), 1u);
    EXPECT_EQ(clients[2].supplied_addrs[0], 8u);
    // Everyone except the supplier observed the write (incl. client 0).
    ASSERT_EQ(clients[0].observed.size(), 1u);
    EXPECT_EQ(clients[0].observed[0].op, BusOp::Write);
    EXPECT_TRUE(clients[2].observed.empty());
    EXPECT_EQ(stats.get("bus.kill"), 1u);

    // Retry: the owner no longer supplies; memory now serves the read.
    clients[2].supply_addr.reset();
    bus.tick();
    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_EQ(clients[0].completions[0].data, 123u);
}

TEST_F(BusTest, TwoSuppliersIsFatal)
{
    clients[1].supply_addr = 8;
    clients[2].supply_addr = 8;
    clients[0].push({BusOp::Read, 8, 0});
    EXPECT_DEATH(bus.tick(), "ownership");
}

TEST_F(BusTest, RmwSuccessOnZeroWord)
{
    clients[0].push({BusOp::Rmw, 4, 1});
    bus.tick();
    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_TRUE(clients[0].completions[0].rmw_success);
    EXPECT_EQ(clients[0].completions[0].data, 0u);
    EXPECT_EQ(memory.peek(4), 1u);
    // Success is snooped as a write.
    ASSERT_EQ(clients[1].observed.size(), 1u);
    EXPECT_EQ(clients[1].observed[0].op, BusOp::Write);
    EXPECT_EQ(stats.get("bus.rmw_success"), 1u);
}

TEST_F(BusTest, RmwFailureOnNonZeroWord)
{
    memory.write(4, 55);
    clients[0].push({BusOp::Rmw, 4, 1});
    bus.tick();
    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_FALSE(clients[0].completions[0].rmw_success);
    EXPECT_EQ(clients[0].completions[0].data, 55u);
    EXPECT_EQ(memory.peek(4), 55u);
    // Failure is snooped as a read.
    ASSERT_EQ(clients[1].observed.size(), 1u);
    EXPECT_EQ(clients[1].observed[0].op, BusOp::Read);
    EXPECT_EQ(clients[1].observed[0].data, 55u);
    EXPECT_EQ(stats.get("bus.rmw_fail"), 1u);
}

TEST_F(BusTest, RmwKilledBySupplier)
{
    clients[1].supply_addr = 4;
    clients[1].supply_value = 9;
    clients[0].push({BusOp::Rmw, 4, 1});
    bus.tick();
    EXPECT_TRUE(clients[0].completions.empty());
    EXPECT_EQ(memory.peek(4), 9u);
    // Retry now fails against the supplied non-zero value.
    clients[1].supply_addr.reset();
    bus.tick();
    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_FALSE(clients[0].completions[0].rmw_success);
}

TEST_F(BusTest, ReadLockLocksAndWriteUnlockReleases)
{
    memory.write(6, 30);
    clients[0].push({BusOp::ReadLock, 6, 0});
    bus.tick();
    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_EQ(clients[0].completions[0].data, 30u);
    EXPECT_TRUE(memory.locked(6));

    // A write by another PE NACKs while the lock is held.
    clients[1].push({BusOp::Write, 6, 99});
    bus.tick();
    EXPECT_TRUE(clients[1].completions.empty());
    EXPECT_TRUE(clients[1].hasRequest());
    EXPECT_EQ(memory.peek(6), 30u);
    EXPECT_GE(stats.get("bus.nack"), 1u);

    // The owner unlocks; the blocked write then proceeds.
    clients[0].push({BusOp::WriteUnlock, 6, 31});
    bus.tick(); // round-robin wraps to client 0: the unlock executes
    EXPECT_FALSE(memory.locked(6));
    bus.tick(); // client 1's blocked write now succeeds
    ASSERT_EQ(clients[1].completions.size(), 1u);
    EXPECT_EQ(memory.peek(6), 99u);
}

TEST_F(BusTest, RmwNacksOnLockedWord)
{
    clients[0].push({BusOp::ReadLock, 6, 0});
    bus.tick();
    clients[1].push({BusOp::Rmw, 6, 1});
    bus.tick();
    EXPECT_TRUE(clients[1].completions.empty());
    EXPECT_GE(stats.get("bus.nack"), 1u);
}

TEST_F(BusTest, PlainReadAllowedOnLockedWord)
{
    memory.write(6, 12);
    clients[0].push({BusOp::ReadLock, 6, 0});
    bus.tick();
    clients[1].push({BusOp::Read, 6, 0});
    bus.tick();
    ASSERT_EQ(clients[1].completions.size(), 1u);
    EXPECT_EQ(clients[1].completions[0].data, 12u);
}

/** A rig with 4-word blocks and 2 extra cycles of memory latency. */
class BlockBusTest : public ::testing::Test
{
  protected:
    BlockBusTest()
        : memory(stats), bus(memory, ArbiterKind::RoundRobin, clock,
                             stats, 0, /*block_words=*/4,
                             /*memory_latency=*/0)
    {
        for (auto &client : clients)
            bus.attach(&client);
    }

    stats::CounterSet stats;
    Clock clock;
    Memory memory;
    Bus bus;
    FakeClient clients[2] = {FakeClient(0), FakeClient(1)};
};

TEST_F(BlockBusTest, BlockReadTransfersWholeBlockAndOccupiesBus)
{
    memory.write(4, 40);
    memory.write(6, 60);
    BusRequest request{BusOp::Read, 5, 0, true, {}};
    clients[0].push(request);
    bus.tick();

    ASSERT_EQ(clients[0].completions.size(), 1u);
    const auto &result = clients[0].completions[0];
    ASSERT_EQ(result.block.size(), 4u);
    EXPECT_EQ(result.block[0], 40u);
    EXPECT_EQ(result.block[2], 60u);
    EXPECT_EQ(result.data, 0u); // word 5 itself
    // The snoopers saw the block payload.
    ASSERT_EQ(clients[1].observed.size(), 1u);
    EXPECT_EQ(clients[1].observed[0].block.size(), 4u);

    // 3 more cycles of transfer occupancy follow.
    EXPECT_FALSE(bus.idle());
    bus.tick();
    bus.tick();
    bus.tick();
    EXPECT_EQ(stats.get("bus.transfer_cycles"), 3u);
    EXPECT_TRUE(bus.idle());
}

TEST_F(BlockBusTest, BlockWriteBackStoresAllWords)
{
    BusRequest request{BusOp::Write, 8, 1, true, {1, 2, 3, 4}};
    clients[0].push(request);
    bus.tick();
    EXPECT_EQ(memory.peek(8), 1u);
    EXPECT_EQ(memory.peek(9), 2u);
    EXPECT_EQ(memory.peek(10), 3u);
    EXPECT_EQ(memory.peek(11), 4u);
    ASSERT_EQ(clients[1].observed.size(), 1u);
    EXPECT_EQ(clients[1].observed[0].block.size(), 4u);
}

TEST_F(BlockBusTest, BlockBaseMath)
{
    EXPECT_EQ(bus.blockBase(0), 0u);
    EXPECT_EQ(bus.blockBase(3), 0u);
    EXPECT_EQ(bus.blockBase(4), 4u);
    EXPECT_EQ(bus.blockBase(7), 4u);
}

TEST(MemoryLatencyBus, TransactionsHoldTheBus)
{
    stats::CounterSet stats;
    Clock clock;
    Memory memory(stats);
    Bus bus(memory, ArbiterKind::RoundRobin, clock, stats, 0, 1,
            /*memory_latency=*/2);
    FakeClient client(0);
    bus.attach(&client);

    client.push({BusOp::Write, 1, 5, false, {}});
    bus.tick(); // executes, then occupies 2 more cycles
    ASSERT_EQ(client.completions.size(), 1u);
    EXPECT_FALSE(bus.idle());
    bus.tick();
    bus.tick();
    EXPECT_TRUE(bus.idle());
    EXPECT_EQ(stats.get("bus.transfer_cycles"), 2u);
}

TEST_F(BusTest, RoundRobinFairnessAcrossTicks)
{
    for (int i = 0; i < 3; i++) {
        clients[0].push({BusOp::Write, 100, 1});
        clients[1].push({BusOp::Write, 200, 2});
        clients[2].push({BusOp::Write, 300, 3});
    }
    for (int i = 0; i < 9; i++)
        bus.tick();
    EXPECT_EQ(clients[0].completions.size(), 3u);
    EXPECT_EQ(clients[1].completions.size(), 3u);
    EXPECT_EQ(clients[2].completions.size(), 3u);
}

TEST_F(BusTest, NackCountersUsePerOpNames)
{
    // The per-op NACK names are pre-joined literals; pin each to the
    // "bus.nack." + toString(op) spelling so neither side can drift.
    for (auto op : {BusOp::Read, BusOp::Write, BusOp::Invalidate,
                    BusOp::Rmw, BusOp::ReadLock, BusOp::WriteUnlock}) {
        EXPECT_TRUE(stats.has("bus.nack." + std::string(toString(op))))
            << "missing pre-interned NACK counter for " << toString(op);
    }

    // And a NACK lands in its op's counter: a write bounces off a
    // locked word.
    clients[0].push({BusOp::ReadLock, 6, 0});
    bus.tick();
    clients[1].push({BusOp::Write, 6, 99});
    bus.tick();
    EXPECT_EQ(stats.get("bus.nack.BusWrite"), 1u);
    EXPECT_EQ(stats.get("bus.nack"), 1u);
}

/**
 * A rig exercising the sharer index directly: clients 0 and 1 opt
 * into indexing (as caches do); client 2 stays always-snoop (as the
 * hierarchical cluster cache does).
 */
class SnoopIndexTest : public ::testing::Test
{
  protected:
    SnoopIndexTest()
        : memory(stats),
          bus(memory, ArbiterKind::RoundRobin, clock, stats)
    {
        for (auto &client : clients)
            bus.attach(&client);
        bus.setSnoopIndexed(0);
        bus.setSnoopIndexed(1);
        EXPECT_TRUE(bus.snoopFilterActive());
    }

    stats::CounterSet stats;
    Clock clock;
    Memory memory;
    Bus bus;
    FakeClient clients[3] = {FakeClient(0), FakeClient(1), FakeClient(2)};
};

TEST_F(SnoopIndexTest, BroadcastVisitsHoldersAndAlwaysSnoopersOnly)
{
    bus.noteBlockPresent(1, 8);
    clients[0].push({BusOp::Write, 8, 7});
    bus.tick();

    // The indexed holder and the always-snoop client observed the
    // write; an indexed client holding nothing was never visited.
    ASSERT_EQ(clients[1].observed.size(), 1u);
    EXPECT_EQ(clients[1].observed[0].data, 7u);
    ASSERT_EQ(clients[2].observed.size(), 1u);

    clients[1].observed.clear();
    clients[2].observed.clear();
    clients[0].push({BusOp::Write, 40, 9}); // nobody holds block 40
    bus.tick();
    EXPECT_TRUE(clients[1].observed.empty());
    ASSERT_EQ(clients[2].observed.size(), 1u); // always-snoop still sees it
}

TEST_F(SnoopIndexTest, InsertAndRemoveMaintainTheHolderList)
{
    EXPECT_TRUE(bus.indexHolders(8).empty());
    bus.noteBlockPresent(1, 8);
    bus.noteBlockPresent(0, 8);
    EXPECT_EQ(bus.indexHolders(8), (std::vector<int>{0, 1}));

    // Eviction (or a clean retag) removes exactly one holder.
    bus.noteBlockAbsent(1, 8);
    EXPECT_EQ(bus.indexHolders(8), (std::vector<int>{0}));
    bus.noteBlockAbsent(0, 8);
    EXPECT_TRUE(bus.indexHolders(8).empty());

    // An evicted holder is no longer visited.
    bus.noteBlockPresent(0, 8);
    bus.noteBlockAbsent(0, 8);
    clients[1].push({BusOp::Write, 8, 7});
    bus.tick();
    EXPECT_TRUE(clients[0].observed.empty());
}

TEST_F(SnoopIndexTest, OwnerLookupResolvesThroughTheIndex)
{
    // Client 1 owns addr 8: index it and let it claim the supply.
    bus.noteBlockPresent(1, 8);
    clients[1].supply_addr = 8;
    clients[1].supply_value = 123;
    clients[0].push({BusOp::Read, 8, 0});
    bus.tick();

    // The read was killed and replaced by the owner's supply write.
    EXPECT_TRUE(clients[0].completions.empty());
    EXPECT_EQ(memory.peek(8), 123u);
    ASSERT_EQ(clients[1].supplied_addrs.size(), 1u);
    EXPECT_EQ(stats.get("bus.kill"), 1u);

    // Retry after the supply: memory now serves the read, and the
    // (still indexed) previous owner snoops it.
    clients[1].supply_addr.reset();
    clients[1].observed.clear();
    bus.tick();
    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_EQ(clients[0].completions[0].data, 123u);
    EXPECT_EQ(clients[1].observed.size(), 1u);
}

TEST_F(SnoopIndexTest, SnoopVisitsShrinkWithTheIndex)
{
    // A write to an unheld block: only the always-snoop client is
    // visited (1 visit), where an unfiltered bus would visit 2.
    clients[0].push({BusOp::Write, 40, 9});
    bus.tick();
    EXPECT_EQ(bus.snoopVisits(), 1u);

    // A read of a block held by client 1: supplier scan polls the
    // holder and the always-snoop client, broadcast visits them both.
    bus.noteBlockPresent(1, 8);
    clients[0].push({BusOp::Read, 8, 0});
    bus.tick();
    EXPECT_EQ(bus.snoopVisits(), 1u + 2u + 2u);
}

TEST(SnoopFilterFallback, SixtyFifthClientRevertsAndCountsOnce)
{
    stats::CounterSet stats;
    Clock clock;
    Memory memory(stats);
    Bus bus(memory, ArbiterKind::RoundRobin, clock, stats);
    std::deque<FakeClient> clients;
    for (PeId pe = 0; pe < 64; pe++) {
        clients.emplace_back(pe);
        bus.attach(&clients.back());
    }
    EXPECT_EQ(bus.snoopFilterFallbacks(), 0u);

    // The 65th client overflows the 64-bit sharer masks: the bus
    // reverts to full snooping and counts the degradation exactly
    // once, however many clients attach afterwards.
    for (PeId pe = 64; pe < 70; pe++) {
        clients.emplace_back(pe);
        bus.attach(&clients.back());
    }
    EXPECT_EQ(bus.snoopFilterFallbacks(), 1u);

    // The reverted bus still works, broadcasting to everyone.
    memory.write(10, 5);
    clients[0].push({BusOp::Read, 10, 0});
    bus.tick();
    ASSERT_EQ(clients[0].completions.size(), 1u);
    EXPECT_EQ(clients[0].completions[0].data, 5u);
    for (std::size_t i = 1; i < clients.size(); i++)
        EXPECT_EQ(clients[i].observed.size(), 1u) << "client " << i;
}

TEST(SnoopFilterFallback, FilterOffBusNeverCountsADegradation)
{
    // A bus asked to run unfiltered is just doing what it was told:
    // crossing 64 clients is not a fallback.
    stats::CounterSet stats;
    Clock clock;
    Memory memory(stats);
    Bus bus(memory, ArbiterKind::RoundRobin, clock, stats, 0, 1, 0,
            false);
    std::deque<FakeClient> clients;
    for (PeId pe = 0; pe < 70; pe++) {
        clients.emplace_back(pe);
        bus.attach(&clients.back());
    }
    EXPECT_EQ(bus.snoopFilterFallbacks(), 0u);
}

} // namespace
} // namespace ddc
