/**
 * @file
 * The two-level hierarchical machine: clusters of PEs on cluster
 * buses, cluster caches on a global bus (Section 8's hierarchical-
 * structures research direction, built on the recursive-RB design of
 * hier/cluster_cache.hh).
 */

#ifndef DDC_HIER_HIER_SYSTEM_HH
#define DDC_HIER_HIER_SYSTEM_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/factory.hh"
#include "dir/fabric.hh"
#include "hier/cluster_cache.hh"
#include "sim/agent.hh"
#include "sim/bus.hh"
#include "sim/clock.hh"
#include "sim/exec_log.hh"
#include "sim/isa.hh"
#include "sim/kernel.hh"
#include "sim/memory.hh"
#include "sim/processor.hh"
#include "sim/shard.hh"
#include "sim/system.hh"
#include "stats/counter.hh"
#include "trace/trace.hh"

namespace ddc {
namespace hier {

/** Global-interconnect flavour of the hierarchical machine. */
enum class GlobalKind
{
    /** One snooping global bus (broadcast; O(clusters) per snoop). */
    Snoop,
    /**
     * Address-interleaved directory home nodes (point-to-point;
     * O(sharers) per transaction — the 1k–4k-PE configuration).
     */
    Directory,
};

/** Printable name of a GlobalKind. */
std::string_view toString(GlobalKind kind);

/** Configuration of a hierarchical machine. */
struct HierConfig
{
    int num_clusters = 4;
    int pes_per_cluster = 4;
    /** Lines per L1 cache. */
    std::size_t cache_lines = 256;
    /**
     * L1 coherence scheme within clusters: Rb or Rwb.  The cluster
     * level always runs RB (ownership acquire / invalidate across
     * clusters); RWB's update broadcast then applies cluster-
     * internally.
     */
    ProtocolKind protocol = ProtocolKind::Rb;
    /** RWB's writes-to-local threshold k (RWB only). */
    int rwb_writes_to_local = 2;
    ArbiterKind arbiter = ArbiterKind::RoundRobin;
    std::uint64_t arbiter_seed = 1;
    bool record_log = false;
    /**
     * Fast-forward run() across quiescent cycles; same contract as
     * SystemConfig::skip_quiescent (byte-identical either way, ANDed
     * with setQuiescentSkipEnabled()).
     */
    bool skip_quiescent = true;
    /**
     * Sharer-indexed snooping on the cluster buses; same contract as
     * SystemConfig::snoop_filter (byte-identical either way, ANDed
     * with setSnoopFilterEnabled()).  Cluster caches register as
     * always-snoop on the global bus, so global broadcasts reach
     * every cluster regardless.
     */
    bool snoop_filter = true;
    /**
     * Collect latency histograms; same contract as
     * SystemConfig::histograms (ORed with the process --histograms
     * flag, purely observational).
     */
    bool histograms = false;
    /**
     * Host worker lanes run() ticks the clusters on (each cluster —
     * local bus + its L1s + its PEs — is one kernel shard).  0 = the
     * process-wide default (the --shards flag, itself defaulting to
     * 1).  Purely a host-performance knob: in deterministic mode
     * (the default) results are byte-identical for every value.
     * Machines that must run on the calling thread (record_log, an
     * attached observability recorder) clamp to one lane.
     */
    int shards = 0;
    /**
     * Static shard-to-lane schedule with guaranteed byte-identical
     * output (see KernelConfig::deterministic).  False opts into
     * dynamic load-balanced claiming.
     */
    bool deterministic_shards = true;
    /**
     * Conservative-lookahead batching for sharded runs: lanes tick
     * multi-cycle windows between barriers when no cluster can reach
     * the global interconnect sooner (see KernelConfig::lookahead).
     * Byte-identical either way; ANDed with the process-wide
     * setLookaheadEnabled() switch (the --no-lookahead flag).
     */
    bool lookahead = true;
    /**
     * Global interconnect: the snooping bus (default, the paper's
     * logically single broadcast medium) or the directory fabric
     * (src/dir) for large cluster counts.  With home_nodes == 1 the
     * directory is cycle-for-cycle identical to the snooping bus
     * (see DESIGN.md, "The directory contract").
     */
    GlobalKind global = GlobalKind::Snoop;
    /** Home nodes of the directory fabric (GlobalKind::Directory). */
    int home_nodes = 1;
};

/** A complete hierarchical shared-bus multiprocessor (RB recursive). */
class HierSystem
{
  public:
    explicit HierSystem(const HierConfig &config);

    /** Total number of PEs. */
    int numPes() const { return config.num_clusters *
                                config.pes_per_cluster; }

    int numClusters() const { return config.num_clusters; }

    /** The cluster PE @p pe belongs to. */
    int clusterOf(PeId pe) const { return pe / config.pes_per_cluster; }

    /** Replace every agent with trace replay of @p trace. */
    void loadTrace(const Trace &trace);

    /** Install @p program on PE @p pe (creates a Processor agent). */
    void setProgram(PeId pe, Program program);

    /** The Processor on @p pe. */
    Processor &processor(PeId pe);

    /** Advance one cycle: global bus, cluster buses, then PEs. */
    void tick();

    /**
     * Run until every agent is done (or @p max_cycles elapse); a hit
     * budget logs a warning and is reported by timedOut().
     */
    Cycle run(Cycle max_cycles = System::kDefaultMaxCycles);

    /** Outcome of the most recent run() (Finished before any run). */
    RunStatus runStatus() const { return run_status; }

    /** True when the most recent run() hit its cycle budget. */
    bool timedOut() const { return run_status == RunStatus::TimedOut; }

    /** Cycles run() fast-forwarded instead of ticking. */
    Cycle skippedCycles() const { return kernel.skippedCycles(); }

    /** Parallel barriers run() executed (see Kernel::barrierEpochs). */
    std::uint64_t barrierEpochs() const { return kernel.barrierEpochs(); }

    /** Mean cycles per barrier window (0 on single-lane runs). */
    double
    meanLookaheadWindow() const
    {
        return kernel.meanLookaheadWindow();
    }

    /** Host worker lanes the next run() will use (>= 1). */
    int workerLanes() const { return kernel.workerLanes(); }

    /**
     * Wall ms the coordinator spent waiting at barriers (0 unless
     * phase profiling is on — the --profile flag).
     */
    double kernelBarrierWaitMs() const;

    /** Wall ms the coordinator spent ticking its own lane. */
    double kernelTickPhaseMs() const;

    bool allDone() const;
    Cycle now() const { return clock.now; }

    /** Global memory's value of @p addr (routed to its home bank). */
    Word memoryValue(Addr addr) const;

    /** Overwrite global memory directly (fault-injection hook). */
    void pokeMemory(Addr addr, Word value);

    /** The machine's latest value of @p addr. */
    Word coherentValue(Addr addr) const;

    /** PE @p pe's L1 coherence state for @p addr. */
    LineState lineState(PeId pe, Addr addr) const;

    /** PE @p pe's L1 cached value of @p addr. */
    Word cacheValue(PeId pe, Addr addr) const;

    /** Cluster @p cluster's cache. */
    const ClusterCache &clusterCache(int cluster) const;

    /** The serial execution log (empty unless record_log). */
    const ExecutionLog &log() const { return execLog; }

    /** Merged counters from all components. */
    stats::CounterSet counters() const;

    /** Global-bus (and global-memory) counters only. */
    const stats::CounterSet &globalCounters() const { return globalStats; }

    /** Cluster @p cluster's bus/cache counters. */
    const stats::CounterSet &clusterCounters(int cluster) const;

    /** Transactions executed on the global bus. */
    std::uint64_t globalBusTransactions() const;

    /** Transactions executed on all cluster buses. */
    std::uint64_t clusterBusTransactions() const;

    /**
     * Broadcast visits + supplier polls across every bus; in
     * directory mode the global-level term is the fabric's
     * point-to-point message count instead (the apples-to-apples
     * "clients touched per transaction" comparison).
     */
    std::uint64_t snoopVisits() const;

    /**
     * The global-level term of snoopVisits() alone: snoop broadcasts
     * and supplier polls on the snooping global bus, point-to-point
     * messages on the directory fabric.  The per-transaction cost of
     * the global interconnect — O(clusters) snooping (once the filter
     * reverts past 64 clusters), O(sharers) directory.
     */
    std::uint64_t globalVisits() const;

    /**
     * Times any bus of this machine degraded from sharer-indexed to
     * full snooping (see Bus::snoopFilterFallbacks).  The snooping
     * global bus degrades the moment a 65th cluster attaches; the
     * directory fabric never does.
     */
    std::uint64_t snoopFilterFallbacks() const;

    /** The directory fabric (null in GlobalKind::Snoop mode). */
    const dir::DirectoryFabric *directoryFabric() const
    {
        return fabric.get();
    }

    /** Mutable fabric access (bench phase-timing enablement). */
    dir::DirectoryFabric *directoryFabric() { return fabric.get(); }

    /** This machine's observability state (null when all off). */
    obs::Recorder *observability() const { return recorder.get(); }

  private:
    const Cache &l1(PeId pe) const;

    HierConfig config;
    Clock clock;
    /**
     * The shared run-loop driver.  The global bus is the serial
     * shard (ticked first each cycle by the coordinating thread —
     * all cross-cluster traffic commits there); each cluster is one
     * parallel shard, tickable concurrently because within a cycle a
     * cluster's bus, cluster cache, L1s, and PEs touch only cluster-
     * local state plus the global bus's atomic request arming.
     */
    Kernel kernel;
    RunStatus run_status = RunStatus::Finished;
    ExecutionLog execLog;
    std::unique_ptr<Protocol> protocol;

    stats::CounterSet globalStats;
    std::vector<std::unique_ptr<stats::CounterSet>> clusterStats;
    /**
     * Per-cluster L1 + PE counter sets (cacheStats was one shared set
     * before sharding; CounterSet::merge sums by name, so counters()
     * is byte-identical to the shared-set scheme while letting each
     * shard count without cross-thread contention).
     */
    std::vector<std::unique_ptr<stats::CounterSet>> l1Stats;

    /** Global memory + snooping bus (GlobalKind::Snoop mode only). */
    std::unique_ptr<Memory> memory;
    std::unique_ptr<Bus> globalBus;
    /** Home-node fabric (GlobalKind::Directory mode only). */
    std::unique_ptr<dir::DirectoryFabric> fabric;
    std::vector<std::unique_ptr<ClusterCache>> clusterCaches;
    std::vector<std::unique_ptr<Bus>> clusterBuses;
    /** l1s[pe]. */
    std::vector<std::unique_ptr<Cache>> l1s;
    std::vector<std::unique_ptr<Agent>> agents;
    /** The serial (global-bus) shard, owned by the kernel. */
    Shard *globalShard = nullptr;
    /** clusterShards[cluster], owned by the kernel. */
    std::vector<Shard *> clusterShards;

    /** Observability state (null when everything is off). */
    std::unique_ptr<obs::Recorder> recorder;
};

/** Outcome of a hierarchical invariant check. */
struct HierInvariantReport
{
    bool ok = true;
    std::size_t violations = 0;
    std::string first_error;
};

/**
 * Check the Section 4 configuration lemma lifted one level, for each
 * address in @p addrs on a quiescent machine:
 *
 *  1. at most one cluster owns the word (entry Local);
 *  2. when a cluster owns it, no other cluster holds any entry and
 *     no L1 outside that cluster holds a live copy;
 *  3. an L1 holding the word dirty (Local) implies its cluster owns
 *     it, all other copies in the machine are dead, and the L1 holds
 *     the machine's latest value;
 *  4. with no owning cluster, every live copy (cluster entries and
 *     L1 lines) agrees with global memory.
 */
HierInvariantReport checkHierarchyInvariants(
    const HierSystem &system, const std::vector<Addr> &addrs);

} // namespace hier
} // namespace ddc

#endif // DDC_HIER_HIER_SYSTEM_HH
