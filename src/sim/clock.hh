/**
 * @file
 * The global cycle counter shared by every component of one System.
 *
 * Per the paper's timing assumptions (Section 2, assumption 5) the bus,
 * cache, and PE cycles are unified: one Clock tick is one bus cycle,
 * during which one bus transaction executes and every non-stalled PE
 * executes one instruction.
 */

#ifndef DDC_SIM_CLOCK_HH
#define DDC_SIM_CLOCK_HH

#include "base/types.hh"

namespace ddc {

/** Shared simulation clock. */
struct Clock
{
    Cycle now = 0;
};

} // namespace ddc

#endif // DDC_SIM_CLOCK_HH
