/**
 * @file
 * Structured event tracing: categories, events, per-shard buffers,
 * and the TraceSink that merges them and writes Chrome trace-event
 * JSON.
 *
 * Components never talk to the sink directly when tracing is off:
 * every emission site holds a TraceBuffer pointer that is null unless
 * its category was enabled, so the disabled path costs exactly one
 * pointer test — no heap traffic, no string formatting, no virtual
 * calls (the zero-overhead-when-off contract; see DESIGN.md).
 *
 * Shard safety: the sink owns one private TraceBuffer per shard
 * (plus any lane-local buffers the kernel requests), so parallel
 * phases append without locks.  The writer concatenates the buffers
 * in index order and stable-sorts by (ts, track, tid); because every
 * (track, tid) pair is written by exactly one buffer, the merged
 * stream is deterministic — independent of worker-lane count — and a
 * sharded run's trace file is byte-identical to the sequential one.
 *
 * Event names and detail strings must have static storage duration:
 * the sink stores the pointers, not copies, so the hot path never
 * allocates.  All fixed vocabulary (bus ops, state-transition labels,
 * causes) satisfies this by construction.
 */

#ifndef DDC_OBS_TRACE_HH
#define DDC_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/types.hh"

namespace ddc {
namespace obs {

/**
 * Trace event categories, one bit each (--trace-categories).
 * Category filtering is resolved once at System construction into
 * per-component buffer pointers, so a disabled category is a null
 * pointer at the emission site, not a runtime mask test per event.
 */
enum class Category : std::uint32_t {
    /** Bus transactions: grant/complete, kill/supply, NACK retries. */
    Bus = 1u << 0,
    /** Per-line tag-state transitions (NP/I/R/L/F/...) with cause. */
    State = 1u << 1,
    /** Lock acquire / release / spin episodes. */
    Lock = 1u << 2,
    /** Per-PE miss-service spans (cpuAccess miss -> completion). */
    Miss = 1u << 3,
    /** Quiescent-skip intervals (next-event time advance). */
    Quiesce = 1u << 4,
    /** Directory-fabric home traffic: grants, fwd/inval/ack, NACKs. */
    Dir = 1u << 5,
    /**
     * Kernel self-profiling: per-lane tick spans, barrier waits, and
     * the lookahead-window counter track.  Deliberately NOT part of
     * "all": these events depend on the host lane count, so enabling
     * them forfeits the byte-identical-across---shards guarantee the
     * simulation categories keep.
     */
    Kernel = 1u << 6,
};

/**
 * Every simulation category enabled (the --trace-categories
 * default).  Excludes Kernel, which is host-dependent by design.
 */
inline constexpr std::uint32_t kAllCategories = 0x3F;

/**
 * Parse a comma-separated category list ("bus,state,lock,miss,
 * quiesce,dir,kernel", or "all") into a bitmask.
 * @return 0 on a malformed list; @p error (when non-null) receives
 *         the offending token.
 */
std::uint32_t parseCategories(std::string_view list,
                              std::string *error = nullptr);

/** Canonical comma-separated names of the categories in @p mask. */
std::string categoryNames(std::uint32_t mask);

/**
 * Track groups (Chrome "pid"); the track id ("tid") within a group is
 * the PE, bus, home-node, or lane index.  One track per PE, one per
 * bus, one per directory home, as the Perfetto view expects.
 */
inline constexpr std::int32_t kTrackPes = 1;
inline constexpr std::int32_t kTrackBuses = 2;
inline constexpr std::int32_t kTrackLocks = 3;
inline constexpr std::int32_t kTrackSim = 4;
inline constexpr std::int32_t kTrackHomes = 5;
inline constexpr std::int32_t kTrackKernel = 6;

/** One buffered trace event (1 simulated cycle == 1 trace us). */
struct TraceEvent
{
    Cycle ts = 0;
    /** Duration in cycles (phase 'X' only). */
    Cycle dur = 0;
    /** Event name; must point at static storage. */
    std::string_view name;
    /** Optional "detail" string arg (cause, op); static storage. */
    const char *detail = nullptr;
    /** Optional "addr" arg, emitted when has_addr. */
    Addr addr = 0;
    bool has_addr = false;
    /** Optional numeric arg, emitted when value_name is non-null. */
    std::int64_t value = 0;
    const char *value_name = nullptr;
    /**
     * 'B' begin, 'E' end, 'X' complete (with dur), 'i' instant,
     * 'C' counter (value under value_name).
     */
    char phase = 'i';
    /** Track group (kTrackPes / kTrackBuses / ...). */
    std::int32_t track = kTrackPes;
    /** Track id within the group (PE index, bus index, 0 for sim). */
    std::int32_t tid = 0;
};

/**
 * One shard's (or lane's) private append-only event buffer.  A
 * buffer has exactly one writer at a time — the shard that owns it —
 * so push() needs no synchronization.  Buffers are created and read
 * only by the owning TraceSink.
 */
class TraceBuffer
{
  public:
    /** Append one event (hot path while tracing; append-only). */
    void push(const TraceEvent &event) { events.push_back(event); }

    std::size_t size() const { return events.size(); }

    const std::vector<TraceEvent> &entries() const { return events; }

  private:
    std::vector<TraceEvent> events;
};

/**
 * Owns the per-shard TraceBuffers and serializes their merged event
 * stream as a Chrome trace-event JSON document on destruction (or
 * via writeFile()).
 *
 * The writer emits process/thread metadata naming every track,
 * concatenates the buffers in index order, stable-sorts by
 * (ts, track, tid) — Chrome requires non-decreasing ts; the track
 * tiebreak makes the merge independent of which shard's buffer an
 * event sat in; same-key events keep buffer order, and every
 * (track, tid) pair has a single writing buffer, so the result is
 * deterministic.  Abutting quiescent-skip spans are coalesced into
 * maximal machine-quiescent intervals (the sequential and windowed
 * kernels chop the same quiescent cycles at different boundaries),
 * and duration pairs are balanced by synthesizing an 'E' at the
 * final timestamp for any span still open when the run ended (e.g. a
 * timed-out miss).
 */
class TraceSink
{
  public:
    /**
     * @param categories Enabled-category bitmask (parseCategories).
     * @param path Output file ("" = never auto-written; tests use
     *        write() on a stream instead).
     */
    explicit TraceSink(std::uint32_t categories,
                       std::string path = "");

    /** Writes the trace file (best effort) unless already written. */
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    bool
    enabled(Category category) const
    {
        return (mask & static_cast<std::uint32_t>(category)) != 0;
    }

    std::uint32_t categories() const { return mask; }

    const std::string &path() const { return outPath; }

    /** Append one event to the shard-0 buffer (serial phases). */
    void push(const TraceEvent &event) { lanes[0]->push(event); }

    /**
     * The buffer for shard @p index, created on first use.  Call
     * only from wiring or serial phases (growth is not thread safe);
     * the returned buffer may then be written by its owning shard.
     */
    TraceBuffer *buffer(std::size_t index);

    /**
     * Append a fresh anonymous buffer (kernel lane-local streams).
     * Serial phases only.
     */
    TraceBuffer *newBuffer();

    /** Total number of buffered events across all buffers. */
    std::size_t size() const;

    /** Serialize the Chrome trace-event document to @p os. */
    void write(std::ostream &os) const;

    /**
     * Write the document to path() once (idempotent).
     * @return false on I/O failure or when path() is empty.
     */
    bool writeFile();

  private:
    std::uint32_t mask;
    std::string outPath;
    bool written = false;
    std::vector<std::unique_ptr<TraceBuffer>> lanes;
};

} // namespace obs
} // namespace ddc

#endif // DDC_OBS_TRACE_HH
