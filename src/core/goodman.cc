#include "core/goodman.hh"

#include "base/logging.hh"

namespace ddc {

CpuReaction
GoodmanProtocol::onCpuAccess(LineState state, CpuOp op, DataClass cls) const
{
    (void)cls;

    CpuReaction reaction;
    switch (op) {
      case CpuOp::Read:
        if (state.present()) {
            reaction.next = state;
            return reaction;
        }
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Read;
        return reaction;

      case CpuOp::Write:
        if (state.tag == LineTag::Reserved || state.tag == LineTag::Dirty) {
            // Past the write-once point: purely local writes.
            reaction.next = {LineTag::Dirty, 0};
            reaction.update_value = true;
            return reaction;
        }
        // Valid, Invalid, or NotPresent: write through exactly once.
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Write;
        return reaction;

      case CpuOp::TestAndSet:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Rmw;
        return reaction;

      case CpuOp::ReadLock:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::ReadLock;
        return reaction;

      case CpuOp::WriteUnlock:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::WriteUnlock;
        return reaction;
    }
    ddc_panic("unhandled CpuOp");
}

LineState
GoodmanProtocol::afterBusOp(LineState state, BusOp op, bool rmw_success) const
{
    (void)state;
    switch (op) {
      case BusOp::Read:
      case BusOp::ReadLock:
        return {LineTag::Valid, 0};
      case BusOp::Write:
      case BusOp::WriteUnlock:
        return {LineTag::Reserved, 0};
      case BusOp::Rmw:
        return rmw_success ? LineState{LineTag::Reserved, 0}
                           : LineState{LineTag::Valid, 0};
      case BusOp::Invalidate:
        break;
    }
    ddc_panic("write-once completed unexpected bus op");
}

SnoopReaction
GoodmanProtocol::onSnoop(LineState state, BusOp op) const
{
    SnoopReaction reaction;
    reaction.next = state;

    switch (op) {
      case BusOp::Read:
        switch (state.tag) {
          case LineTag::Dirty:
            // Memory is stale: intervene and supply.
            reaction.supply = true;
            return reaction;
          case LineTag::Reserved:
            // Another reader exists now; a later write must go back
            // through the bus.
            reaction.next = {LineTag::Valid, 0};
            return reaction;
          case LineTag::Valid:
          case LineTag::Invalid:   // Event broadcast only: no snarf.
          case LineTag::NotPresent:
            return reaction;
          default:
            break;
        }
        break;

      case BusOp::Write:
        switch (state.tag) {
          case LineTag::Valid:
          case LineTag::Reserved:
          case LineTag::Dirty:
            reaction.next = {LineTag::Invalid, 0};
            return reaction;
          case LineTag::Invalid:
          case LineTag::NotPresent:
            return reaction;
          default:
            break;
        }
        break;

      case BusOp::Invalidate:
        if (state.tag != LineTag::NotPresent)
            reaction.next = {LineTag::Invalid, 0};
        return reaction;

      default:
        break;
    }
    ddc_panic("write-once snooped unexpected bus op / state combination");
}

LineState
GoodmanProtocol::afterSupply(LineState state) const
{
    ddc_assert(state.tag == LineTag::Dirty,
               "only a Dirty line can supply data");
    return {LineTag::Valid, 0};
}

bool
GoodmanProtocol::needsWriteback(LineState state) const
{
    return state.tag == LineTag::Dirty;
}

} // namespace ddc
