#include "hier/hier_system.hh"

#include <algorithm>

#include "base/logging.hh"
#include "core/rb.hh"
#include "sim/trace_agent.hh"

namespace ddc {
namespace hier {

std::string_view
toString(GlobalKind kind)
{
    switch (kind) {
      case GlobalKind::Snoop:     return "snoop";
      case GlobalKind::Directory: return "directory";
    }
    ddc_panic("unknown GlobalKind ", static_cast<int>(kind));
}

HierSystem::HierSystem(const HierConfig &config)
    : config(config),
      kernel(clock,
             KernelConfig{config.shards > 0 ? config.shards
                                            : defaultShards(),
                          config.deterministic_shards,
                          config.skip_quiescent,
                          config.lookahead})
{
    ddc_assert(config.num_clusters >= 1, "need at least one cluster");
    ddc_assert(config.pes_per_cluster >= 1,
               "need at least one PE per cluster");
    ddc_assert(config.cache_lines >= 1, "need at least one cache line");
    ddc_assert(config.protocol == ProtocolKind::Rb ||
                   config.protocol == ProtocolKind::Rwb,
               "the hierarchical machine supports the RB and RWB schemes");
    protocol = makeProtocol(config.protocol, config.rwb_writes_to_local);

    globalShard = &kernel.makeSerialShard(config.arbiter_seed, 0);
    if (config.global == GlobalKind::Directory) {
        // Home nodes replace the global bus + monolithic memory;
        // they run in the serial phase because the snooping bus
        // commits supply/kill/deliver atomically within a cycle and
        // the clusters rely on observing them in home order.
        fabric = std::make_unique<dir::DirectoryFabric>(
            config.home_nodes, config.arbiter, config.arbiter_seed,
            globalStats);
        globalShard->addComponent(fabric.get());
    } else {
        ddc_assert(config.home_nodes == 1,
                   "home_nodes > 1 needs GlobalKind::Directory");
        memory = std::make_unique<Memory>(globalStats);
        globalBus = std::make_unique<Bus>(*memory, config.arbiter,
                                          globalShard->localClock(),
                                          globalStats,
                                          config.arbiter_seed, 1, 0,
                                          config.snoop_filter);
        globalShard->addComponent(globalBus.get());
    }

    // The serial execution log is one shared stream; recording
    // pins the run to the calling thread (results are identical —
    // lanes are a host-performance knob only).
    ExecutionLog *log = config.record_log ? &execLog : nullptr;
    if (log)
        kernel.forceSequential();
    for (int c = 0; c < config.num_clusters; c++) {
        clusterStats.push_back(std::make_unique<stats::CounterSet>());
        l1Stats.push_back(std::make_unique<stats::CounterSet>());
        clusterCaches.push_back(
            std::make_unique<ClusterCache>(c, *clusterStats.back()));
        if (fabric)
            clusterCaches.back()->connectGlobal(*fabric);
        else
            clusterCaches.back()->connectGlobal(*globalBus);
        // Cluster-resident components stamp observability output from
        // the shard-local clock: inside a lookahead window the shared
        // clock is frozen at the window base, and only the shard
        // knows the cycle it is actually ticking.
        Shard &shard = kernel.makeShard(
            config.arbiter_seed,
            static_cast<std::size_t>(config.pes_per_cluster));
        clusterShards.push_back(&shard);
        clusterBuses.push_back(std::make_unique<Bus>(
            *clusterCaches.back(), config.arbiter, shard.localClock(),
            *clusterStats.back(),
            config.arbiter_seed + static_cast<std::uint64_t>(c) + 1,
            1, 0, config.snoop_filter));
        shard.addComponent(clusterBuses.back().get());

        for (int p = 0; p < config.pes_per_cluster; p++) {
            PeId pe = c * config.pes_per_cluster + p;
            l1s.push_back(std::make_unique<Cache>(
                pe, config.cache_lines, *protocol, shard.localClock(),
                *l1Stats.back(), log));
            l1s.back()->connectBus(*clusterBuses.back());
            l1s.back()->setWakeFlag(
                shard.wakeFlag(static_cast<std::size_t>(p)));
            clusterCaches.back()->addChild(l1s.back().get());
        }
    }
    agents.resize(static_cast<std::size_t>(numPes()));

    // Bus track 0 is the global bus; cluster c's bus is track 1 + c.
    // Observability streams are sharded like the kernel: the serial
    // (global) shard writes stream 0 and cluster c writes stream
    // 1 + c, each single-writer at any lane count — so tracing and
    // histograms no longer pin the run to one lane (see DESIGN.md,
    // "The observability contract").
    recorder = obs::makeRecorder(
        config.histograms, 0,
        static_cast<std::size_t>(1 + config.num_clusters));
    obs::CounterSampler *sampler = nullptr;
    if (recorder) {
        if (globalBus)
            globalBus->setObserver(recorder.get(), 0, 0);
        // The directory fabric traces on its own "Homes" track
        // (category dir) instead of a bus track.
        if (fabric)
            fabric->setObserver(recorder.get(),
                                &globalShard->localClock());
        for (int c = 0; c < config.num_clusters; c++)
            clusterBuses[static_cast<std::size_t>(c)]->setObserver(
                recorder.get(), 1 + c,
                static_cast<std::size_t>(1 + c));
        for (PeId pe = 0; pe < numPes(); pe++)
            l1s[static_cast<std::size_t>(pe)]->setObserver(
                recorder.get(),
                static_cast<std::size_t>(1 + clusterOf(pe)));
        kernel.setQuiesceSink(recorder->trace(obs::Category::Quiesce));
        if (recorder->trace(obs::Category::Kernel) != nullptr)
            kernel.setKernelTrace(recorder->sink());
        kernel.setProfile(recorder->profile());
        if (fabric)
            fabric->setProfile(recorder->profile());
        sampler = recorder->sampler();
        kernel.setSampler(sampler);
    }
    if (sampler) {
        auto global_busy = globalStats.intern("bus.busy_cycles");
        sampler->addColumn("global.busy_cycles",
                           [this, global_busy](Cycle) {
                               return globalStats.get(global_busy);
                           });
        for (int c = 0; c < config.num_clusters; c++) {
            auto *cluster = clusterStats[static_cast<std::size_t>(c)]
                                .get();
            auto busy = cluster->intern("bus.busy_cycles");
            sampler->addColumn(
                "cluster" + std::to_string(c) + ".busy_cycles",
                [cluster, busy](Cycle) { return cluster->get(busy); });
        }
        if (fabric) {
            dir::DirectoryFabric *fab = fabric.get();
            // Sampling doubles as the dir_occupancy histogram feed:
            // every row's block count is one occupancy observation.
            obs::RunMetrics *dir_metrics =
                config.histograms ? recorder->metricsLane(0) : nullptr;
            sampler->addColumn(
                "dir.blocks", [fab, dir_metrics](Cycle) {
                    auto blocks = static_cast<std::uint64_t>(
                        fab->directoryBlocks());
                    if (dir_metrics)
                        dir_metrics->dir_occupancy.sample(blocks);
                    return blocks;
                });
            sampler->addColumn("dir.home_msgs.max", [fab](Cycle) {
                return fab->maxHomeMessages();
            });
            sampler->addColumn("dir.home_msgs.mean", [fab](Cycle) {
                return static_cast<std::uint64_t>(
                    fab->meanHomeMessages());
            });
        }
    }
}

double
HierSystem::kernelBarrierWaitMs() const
{
    const obs::PhaseProfile *profile =
        recorder ? recorder->profile() : nullptr;
    return profile ? profile->kernel_barrier_ms : 0.0;
}

double
HierSystem::kernelTickPhaseMs() const
{
    const obs::PhaseProfile *profile =
        recorder ? recorder->profile() : nullptr;
    return profile ? profile->kernel_tick_ms : 0.0;
}

void
HierSystem::loadTrace(const Trace &trace)
{
    ddc_assert(trace.numPes() <= numPes(),
               "trace has more PE streams than the machine has PEs");
    for (PeId pe = 0; pe < numPes(); pe++) {
        std::vector<MemRef> stream;
        if (pe < trace.numPes())
            stream = trace.stream(pe);
        int cluster = clusterOf(pe);
        agents[static_cast<std::size_t>(pe)] = std::make_unique<TraceAgent>(
            pe, CacheSet({l1s[static_cast<std::size_t>(pe)].get()}),
            std::move(stream),
            *l1Stats[static_cast<std::size_t>(cluster)]);
        clusterShards[static_cast<std::size_t>(cluster)]->setAgent(
            static_cast<std::size_t>(pe % config.pes_per_cluster),
            agents[static_cast<std::size_t>(pe)].get());
    }
    for (Shard *shard : clusterShards)
        shard->rebuild();
}

void
HierSystem::setProgram(PeId pe, Program program)
{
    ddc_assert(pe >= 0 && pe < numPes(), "PE id out of range");
    int cluster = clusterOf(pe);
    agents[static_cast<std::size_t>(pe)] = std::make_unique<Processor>(
        pe, CacheSet({l1s[static_cast<std::size_t>(pe)].get()}),
        std::move(program), *l1Stats[static_cast<std::size_t>(cluster)]);
    Shard *shard = clusterShards[static_cast<std::size_t>(cluster)];
    shard->setAgent(static_cast<std::size_t>(pe % config.pes_per_cluster),
                    agents[static_cast<std::size_t>(pe)].get());
    shard->rebuild();
}

Processor &
HierSystem::processor(PeId pe)
{
    ddc_assert(pe >= 0 && pe < numPes(), "PE id out of range");
    auto *processor =
        dynamic_cast<Processor *>(agents[static_cast<std::size_t>(pe)]
                                      .get());
    if (processor == nullptr)
        ddc_fatal("PE ", pe, " is not running a program");
    return *processor;
}

void
HierSystem::tick()
{
    // Global commits first: a cluster's forwarded completion lands
    // before the cluster bus (and the PEs) run this cycle.  The
    // kernel preserves that order — serial (global) shard, then the
    // cluster shards.
    kernel.tickOnce();
}

Cycle
HierSystem::run(Cycle max_cycles)
{
    // Next-event time advance and shard scheduling live in the
    // kernel; see Kernel::run.  The hierarchy's buses run at the
    // unified (zero extra latency) cycle, so skips engage only when
    // every level is simultaneously blocked — but the engine is wired
    // identically so the on/off equivalence guarantee covers this
    // machine too.
    Cycle start = clock.now;
    run_status = kernel.run(max_cycles);
    if (run_status == RunStatus::TimedOut) {
        ddc_warn("HierSystem::run hit its cycle budget (", max_cycles,
                 " cycles) with agents still busy; reporting timed_out");
    }
    return clock.now - start;
}

bool
HierSystem::allDone() const
{
    return kernel.allDone();
}

const Cache &
HierSystem::l1(PeId pe) const
{
    ddc_assert(pe >= 0 && pe < numPes(), "PE id out of range");
    return *l1s[static_cast<std::size_t>(pe)];
}

Word
HierSystem::memoryValue(Addr addr) const
{
    return fabric ? fabric->memoryValue(addr) : memory->peek(addr);
}

void
HierSystem::pokeMemory(Addr addr, Word value)
{
    if (fabric)
        fabric->pokeMemory(addr, value);
    else
        memory->poke(addr, value);
}

Word
HierSystem::coherentValue(Addr addr) const
{
    // A dirty L1 holds the latest value; else an owning cluster cache;
    // else global memory.
    for (PeId pe = 0; pe < numPes(); pe++) {
        if (protocol->needsWriteback(l1(pe).lineState(addr)))
            return l1(pe).lineValue(addr);
    }
    for (const auto &cluster : clusterCaches) {
        if (cluster->owns(addr))
            return cluster->value(addr);
    }
    return memoryValue(addr);
}

LineState
HierSystem::lineState(PeId pe, Addr addr) const
{
    return l1(pe).lineState(addr);
}

Word
HierSystem::cacheValue(PeId pe, Addr addr) const
{
    return l1(pe).lineValue(addr);
}

const ClusterCache &
HierSystem::clusterCache(int cluster) const
{
    ddc_assert(cluster >= 0 && cluster < config.num_clusters,
               "cluster index out of range");
    return *clusterCaches[static_cast<std::size_t>(cluster)];
}

stats::CounterSet
HierSystem::counters() const
{
    kernel.flushStalls();
    stats::CounterSet merged;
    merged.merge(globalStats);
    for (const auto &l1 : l1Stats)
        merged.merge(*l1);
    for (const auto &cluster : clusterStats)
        merged.merge(*cluster);
    return merged;
}

const stats::CounterSet &
HierSystem::clusterCounters(int cluster) const
{
    ddc_assert(cluster >= 0 && cluster < config.num_clusters,
               "cluster index out of range");
    return *clusterStats[static_cast<std::size_t>(cluster)];
}

std::uint64_t
HierSystem::globalBusTransactions() const
{
    return globalStats.get("bus.busy_cycles");
}

std::uint64_t
HierSystem::clusterBusTransactions() const
{
    std::uint64_t total = 0;
    for (const auto &cluster : clusterStats)
        total += cluster->get("bus.busy_cycles");
    return total;
}

std::uint64_t
HierSystem::snoopVisits() const
{
    std::uint64_t total = globalVisits();
    for (const auto &bus : clusterBuses)
        total += bus->snoopVisits();
    return total;
}

std::uint64_t
HierSystem::globalVisits() const
{
    return fabric ? fabric->messageVisits() : globalBus->snoopVisits();
}

std::uint64_t
HierSystem::snoopFilterFallbacks() const
{
    std::uint64_t total = globalBus ? globalBus->snoopFilterFallbacks()
                                    : 0;
    for (const auto &bus : clusterBuses)
        total += bus->snoopFilterFallbacks();
    return total;
}

namespace {

void
flag(HierInvariantReport &report, const std::string &message)
{
    if (report.ok) {
        report.ok = false;
        report.first_error = message;
    }
    report.violations++;
}

} // namespace

HierInvariantReport
checkHierarchyInvariants(const HierSystem &system,
                         const std::vector<Addr> &addrs)
{
    HierInvariantReport report;
    RbProtocol rb; // needsWriteback is shared by RB and RWB (Local only)

    for (Addr addr : addrs) {
        std::string where = "addr " + std::to_string(addr) + ": ";

        int owner_cluster = -1;
        for (int c = 0; c < system.numClusters(); c++) {
            if (!system.clusterCache(c).owns(addr))
                continue;
            if (owner_cluster >= 0)
                flag(report, where + "two owning clusters");
            owner_cluster = c;
        }

        // L1-dirty implies cluster ownership and machine-wide latest.
        for (PeId pe = 0; pe < system.numPes(); pe++) {
            LineState state = system.lineState(pe, addr);
            if (!rb.needsWriteback(state))
                continue;
            if (system.clusterOf(pe) != owner_cluster) {
                flag(report, where + "dirty L1 outside the owning "
                                     "cluster");
            }
            if (system.cacheValue(pe, addr) !=
                system.coherentValue(addr)) {
                flag(report, where + "dirty L1 is not the latest value");
            }
        }

        if (owner_cluster >= 0) {
            // Exclusivity: nothing lives outside the owning cluster.
            for (int c = 0; c < system.numClusters(); c++) {
                if (c != owner_cluster &&
                    system.clusterCache(c).holds(addr)) {
                    flag(report, where + "entry outside the owning "
                                         "cluster");
                }
            }
            for (PeId pe = 0; pe < system.numPes(); pe++) {
                if (system.clusterOf(pe) != owner_cluster &&
                    system.lineState(pe, addr).present()) {
                    flag(report, where + "live L1 copy outside the "
                                         "owning cluster");
                }
            }
        } else {
            // Shared configuration: every live copy matches memory.
            Word memory_value = system.memoryValue(addr);
            for (int c = 0; c < system.numClusters(); c++) {
                if (system.clusterCache(c).holds(addr) &&
                    system.clusterCache(c).value(addr) != memory_value) {
                    flag(report, where + "cluster entry disagrees with "
                                         "memory");
                }
            }
            for (PeId pe = 0; pe < system.numPes(); pe++) {
                if (system.lineState(pe, addr).present() &&
                    system.cacheValue(pe, addr) != memory_value) {
                    flag(report, where + "live L1 copy disagrees with "
                                         "memory");
                }
            }
        }
    }
    return report;
}

} // namespace hier
} // namespace ddc
