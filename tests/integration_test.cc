/**
 * @file
 * End-to-end scenarios asserting the paper's qualitative performance
 * claims: RB's read broadcast, RWB's single-bus-write array init,
 * producer/consumer behaviour, and scheme comparisons on archetypal
 * shared-data patterns.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

RunSummary
runOn(ProtocolKind protocol, const Trace &trace, std::size_t lines = 256)
{
    SystemConfig config;
    config.num_pes = std::max(trace.numPes(), 1);
    config.cache_lines = lines;
    config.protocol = protocol;
    auto summary = runTrace(config, trace, /*check_consistency=*/true);
    EXPECT_TRUE(summary.completed) << toString(protocol);
    EXPECT_TRUE(summary.consistent) << toString(protocol);
    return summary;
}

/**
 * Section 5: initializing an array much larger than the cache costs
 * two bus writes per element under RB (write-through + write-back of
 * the evicted Local line) but only one under RWB (the element parks in
 * F, which is clean).
 */
TEST(ArrayInit, RwbHalvesBusWrites)
{
    const std::uint64_t elements = 512; // 2x the 256-line cache
    auto trace = makeArrayInitTrace(2, elements);

    auto rb = runOn(ProtocolKind::Rb, trace);
    auto rwb = runOn(ProtocolKind::Rwb, trace);

    std::uint64_t total = 2 * elements;
    std::uint64_t rb_writes = rb.counters.get("bus.write");
    std::uint64_t rwb_writes = rwb.counters.get("bus.write");

    // RB: one write-through per element + one write-back per evicted
    // element; the last cache-full of Local lines is never evicted.
    std::uint64_t never_evicted = 2 * 256;
    EXPECT_EQ(rb_writes, total + (total - never_evicted));
    // RWB: exactly one bus write per element, zero write-backs.
    EXPECT_EQ(rwb_writes, total);
    EXPECT_EQ(rwb.counters.get("cache.writeback"), 0u);
    EXPECT_GT(rb.counters.get("cache.writeback"), 0u);
}

/**
 * The cyclical pattern "written by some one PE and then read by
 * others" (Section 5): under RWB the write broadcast updates every
 * consumer's cache, so consumer reads cost no bus traffic; RB
 * invalidates and pays one refill per round; write-through and
 * write-once pay a refill per consumer per round.
 */
TEST(ProducerConsumer, RwbNeedsFewestTransactions)
{
    auto trace = makeProducerConsumerTrace(4, 16, 8, 2);

    auto rwb = runOn(ProtocolKind::Rwb, trace);
    auto rb = runOn(ProtocolKind::Rb, trace);
    auto write_once = runOn(ProtocolKind::WriteOnce, trace);
    auto write_through = runOn(ProtocolKind::WriteThrough, trace);

    EXPECT_LT(rwb.bus_transactions, rb.bus_transactions);
    EXPECT_LT(rb.bus_transactions, write_once.bus_transactions);
    EXPECT_LE(rwb.bus_transactions, write_through.bus_transactions);
}

/**
 * RB's read broadcast: when many PEs read a value one PE wrote, the
 * first bus read refills every interested cache at once, so the
 * followers' reads are hits.  Goodman's write-once lacks the
 * broadcast and pays one bus read per follower.
 */
TEST(ReadBroadcast, RbRefillsAllCachesWithOneRead)
{
    const int num_pes = 6;
    const int rounds = 8;
    Trace trace(num_pes);
    Word value = 1;
    for (int round = 0; round < rounds; round++) {
        trace.append(0, {CpuOp::Write, sharedBase(), value++,
                         DataClass::Shared});
        for (PeId pe = 1; pe < num_pes; pe++) {
            for (int r = 0; r < 4; r++) {
                trace.append(pe, {CpuOp::Read, sharedBase(), 0,
                                  DataClass::Shared});
            }
        }
    }

    auto rb = runOn(ProtocolKind::Rb, trace);
    auto write_once = runOn(ProtocolKind::WriteOnce, trace);
    EXPECT_LT(rb.counters.get("bus.read"),
              write_once.counters.get("bus.read"));
}

/**
 * Dynamic reclassification (Section 3): a shared variable referenced
 * for a while by only one PE behaves like a local variable — repeated
 * read/write by the owner generates no traffic once Local.
 */
TEST(DynamicClassification, PrivatePhaseIsSilentUnderRb)
{
    Trace trace(2);
    // Phase 1: both PEs share the variable.
    trace.append(0, {CpuOp::Write, sharedBase(), 1, DataClass::Shared});
    trace.append(1, {CpuOp::Read, sharedBase(), 0, DataClass::Shared});
    // Phase 2: PE 0 uses it exclusively, many times.
    for (int i = 0; i < 100; i++) {
        trace.append(0, {CpuOp::Write, sharedBase(),
                         static_cast<Word>(i + 2), DataClass::Shared});
        trace.append(0, {CpuOp::Read, sharedBase(), 0, DataClass::Shared});
    }

    auto rb = runOn(ProtocolKind::Rb, trace);
    // Far fewer transactions than references: the private phase runs
    // in the cache. (A handful of transactions for the shared phase.)
    EXPECT_LT(rb.bus_transactions, 12u);

    auto write_through = runOn(ProtocolKind::WriteThrough, trace);
    EXPECT_GT(write_through.bus_transactions, 100u); // every write
}

/** Migratory data: every protocol stays consistent; RWB's update
 *  broadcasts let the next PE in the chain read without a miss. */
TEST(Migratory, RwbBeatsWriteThroughAndStaysConsistent)
{
    auto trace = makeMigratoryTrace(4, 8, 10);
    auto rwb = runOn(ProtocolKind::Rwb, trace);
    auto write_through = runOn(ProtocolKind::WriteThrough, trace);
    EXPECT_LT(rwb.bus_transactions, write_through.bus_transactions);
}

/**
 * The Cm* baseline reproduces Raskin's accounting: every shared
 * reference and every local write is a "miss" (bus transaction).
 */
TEST(CmStarAccounting, SharedAndLocalWritesAlwaysMiss)
{
    Trace trace(1);
    // The code word must not conflict-map with the local word in the
    // 64-line cache (codeBase and localBase are 64 Ki words apart).
    Addr code_word = codeBase(0) + 33;
    for (int i = 0; i < 10; i++) {
        trace.append(0, {CpuOp::Read, sharedBase(), 0, DataClass::Shared});
        trace.append(0, {CpuOp::Write, localBase(0),
                         static_cast<Word>(i + 1), DataClass::Local});
        trace.append(0, {CpuOp::Read, code_word, 0, DataClass::Code});
    }
    auto summary = runOn(ProtocolKind::CmStar, trace, 64);
    // 10 shared reads + 10 local writes + 1 code cold miss.
    EXPECT_EQ(summary.counters.get("cache.read_miss.Shared"), 10u);
    EXPECT_EQ(summary.counters.get("cache.write_miss.Local"), 10u);
    EXPECT_EQ(summary.counters.get("cache.read_miss.Code"), 1u);
    EXPECT_EQ(summary.counters.get("cache.read_hit.Code"), 9u);
}

/** Larger caches reduce the Cm* read-miss ratio (the Table 1-1 trend). */
TEST(CmStarTrend, ReadMissRatioFallsWithCacheSize)
{
    auto trace = makeCmStarTrace(cmStarApplicationA(), 2, 20000, 42);
    double previous = 1.0;
    for (std::size_t lines : {256u, 1024u, 4096u}) {
        SystemConfig config;
        config.num_pes = 2;
        config.cache_lines = lines;
        config.protocol = ProtocolKind::CmStar;
        auto summary = runTrace(config, trace);
        ASSERT_TRUE(summary.completed);
        double read_miss =
            static_cast<double>(
                summary.counters.get("cache.read_miss.Code") +
                summary.counters.get("cache.read_miss.Local")) /
            static_cast<double>(summary.total_refs);
        EXPECT_LT(read_miss, previous) << lines << " lines";
        previous = read_miss;
    }
}

/** The transparent schemes beat the Cm* baseline on shared data. */
TEST(SchemeComparison, CachingSharedDataPaysOff)
{
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 10000, 7);
    auto cmstar = runOn(ProtocolKind::CmStar, trace, 1024);
    auto rb = runOn(ProtocolKind::Rb, trace, 1024);
    auto rwb = runOn(ProtocolKind::Rwb, trace, 1024);
    EXPECT_LT(rb.bus_per_ref, cmstar.bus_per_ref);
    EXPECT_LT(rwb.bus_per_ref, cmstar.bus_per_ref);
}

} // namespace
} // namespace ddc
