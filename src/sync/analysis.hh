/**
 * @file
 * Post-run analysis of lock behaviour from the serial execution log:
 * who acquired how often (fairness), how long critical sections held
 * the lock, and how quickly a released lock was re-acquired
 * (handoff).  Complements the bus-traffic metrics of Section 6 with
 * latency/fairness distributions.
 */

#ifndef DDC_SYNC_ANALYSIS_HH
#define DDC_SYNC_ANALYSIS_HH

#include <vector>

#include "base/types.hh"
#include "sim/exec_log.hh"
#include "stats/histogram.hh"

namespace ddc {
namespace sync {

/** Lock behaviour extracted from an execution log. */
struct LockAnalysis
{
    /** Successful acquisitions in log order. */
    std::uint64_t acquisitions = 0;
    /** Failed test-and-set attempts. */
    std::uint64_t failed_attempts = 0;
    /** Acquisitions per PE. */
    std::vector<std::uint64_t> per_pe;
    /** Cycles from acquisition to the matching release. */
    stats::Histogram hold_cycles{32, 16};
    /** Cycles from a release to the next acquisition. */
    stats::Histogram handoff_cycles{32, 4};

    /**
     * Jain's fairness index over per-PE acquisition counts:
     * 1.0 = perfectly fair, 1/n = one PE got everything.
     */
    double fairnessIndex() const;
};

/**
 * Extract lock behaviour for @p lock_addr from @p log.
 *
 * An acquisition is a successful TestAndSet of the lock word; the
 * matching release is the next write of zero to it by the same PE.
 *
 * @param log Serial execution log (record_log must have been on).
 * @param lock_addr The lock word.
 * @param num_pes Number of PEs (sizes per_pe).
 */
LockAnalysis analyzeLock(const ExecutionLog &log, Addr lock_addr,
                         int num_pes);

} // namespace sync
} // namespace ddc

#endif // DDC_SYNC_ANALYSIS_HH
