#include "trace/rng.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ddc {

namespace {

/** SplitMix64 step, used only to expand the user seed. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state)
        word = splitmix64(sm);
    // xoshiro must not start in the all-zero state.
    if ((state[0] | state[1] | state[2] | state[3]) == 0)
        state[0] = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    ddc_assert(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) % bound
    for (;;) {
        std::uint64_t value = next();
        if (value >= threshold)
            return value % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    ddc_assert(lo <= hi, "nextRange requires lo <= hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    ddc_assert(!weights.empty(), "nextWeighted needs weights");
    double total = 0.0;
    for (double w : weights) {
        ddc_assert(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    ddc_assert(total > 0.0, "weights must not all be zero");
    double pick = nextDouble() * total;
    double run = 0.0;
    for (std::size_t i = 0; i < weights.size(); i++) {
        run += weights[i];
        if (pick < run)
            return i;
    }
    return weights.size() - 1;
}

std::uint64_t
Rng::nextGeometric(double decay, std::uint64_t bound)
{
    ddc_assert(bound > 0, "nextGeometric bound must be positive");
    ddc_assert(decay > 0.0 && decay < 1.0, "decay must lie in (0, 1)");
    // Inverse transform over a truncated geometric distribution.
    double u = nextDouble();
    double mass = 1.0 - std::pow(decay, static_cast<double>(bound));
    double x = std::log(1.0 - u * mass) / std::log(decay);
    auto k = static_cast<std::uint64_t>(x);
    return k >= bound ? bound - 1 : k;
}

std::uint64_t
StreamRng::at(std::uint64_t draw) const
{
    // SplitMix64 with the stream position folded into the state: the
    // finalizer decorrelates nearby seeds and nearby draw indices, so
    // seed ^ shard_id streams are independent even for adjacent shard
    // ids.
    std::uint64_t x = seed + (draw + 1) * 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
StreamRng::nextBelow(std::uint64_t bound)
{
    ddc_assert(bound > 0, "nextBelow bound must be positive");
    std::uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) % bound
    for (;;) {
        std::uint64_t value = next();
        if (value >= threshold)
            return value % bound;
    }
}

ZipfSampler::ZipfSampler(double s, std::uint64_t n)
{
    ddc_assert(n > 0, "ZipfSampler needs a positive support size");
    ddc_assert(s >= 0.0, "ZipfSampler exponent must be non-negative");
    cdf.resize(static_cast<std::size_t>(n));
    double run = 0.0;
    for (std::uint64_t k = 0; k < n; k++) {
        run += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf[static_cast<std::size_t>(k)] = run;
    }
    for (auto &value : cdf)
        value /= run;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        --it;
    return static_cast<std::uint64_t>(it - cdf.begin());
}

} // namespace ddc
