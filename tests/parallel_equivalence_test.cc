/**
 * @file
 * Shard-count equivalence suite for the parallel simulation kernel.
 *
 * The kernel's contract is that --shards N is a host-performance knob
 * only: every counter, the final cycle count, the run status, and the
 * serialized JSON must be byte-identical whether a hierarchical
 * machine ticks its clusters on one host thread or many — including
 * under the Random arbiter (per-bus RNG streams must not shift), for
 * timed-out runs, and for the flat machine, which is always a single
 * shard but reads the same process-wide default.  The same contract
 * covers conservative lookahead (multi-cycle barrier windows): the
 * lookahead-on and lookahead-off suites pin both settings to the
 * windowless sequential baseline for every protocol, the Random
 * arbiter, and the directory global fabric.  Runs here avoid
 * record_log so the parallel lanes genuinely engage (the serial
 * execution log pins a machine to one lane).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

#include "exp/runner.hh"
#include "hier/hier_system.hh"
#include "sim/system.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

/** Everything observable from one hier run, for byte-wise compare. */
struct Observed
{
    Cycle cycles = 0;
    RunStatus status = RunStatus::Finished;
    Cycle skipped = 0;
    std::string counters;
    std::string global_counters;
    std::string cluster0_counters;
};

Observed
observeHier(hier::HierConfig config, const Trace &trace, int shards,
            Cycle max_cycles = System::kDefaultMaxCycles)
{
    config.shards = shards;
    hier::HierSystem system(config);
    system.loadTrace(trace);
    Observed seen;
    seen.cycles = system.run(max_cycles);
    seen.status = system.runStatus();
    seen.skipped = system.skippedCycles();
    seen.counters = system.counters().report();
    seen.global_counters = system.globalCounters().report();
    seen.cluster0_counters = system.clusterCounters(0).report();
    return seen;
}

void
expectIdentical(const Observed &sequential, const Observed &parallel,
                const std::string &label)
{
    EXPECT_EQ(sequential.cycles, parallel.cycles) << label;
    EXPECT_EQ(sequential.status, parallel.status) << label;
    EXPECT_EQ(sequential.skipped, parallel.skipped) << label;
    EXPECT_EQ(sequential.counters, parallel.counters) << label;
    EXPECT_EQ(sequential.global_counters, parallel.global_counters)
        << label;
    EXPECT_EQ(sequential.cluster0_counters, parallel.cluster0_counters)
        << label;
}

/** 1 plus a spread of lane counts including the host's own. */
std::vector<int>
shardCounts()
{
    std::vector<int> counts{2, 4};
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw > 1 && hw != 2 && hw != 4)
        counts.push_back(hw);
    return counts;
}

TEST(ParallelEquivalence, HierAllProtocolsAndShardCounts)
{
    auto trace = makeUniformRandomTrace(16, 800, 128, 0.3, 0.05, 17);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        hier::HierConfig config;
        config.num_clusters = 8;
        config.pes_per_cluster = 2;
        config.cache_lines = 64;
        config.protocol = protocol;
        Observed sequential = observeHier(config, trace, 1);
        for (int shards : shardCounts()) {
            expectIdentical(sequential,
                            observeHier(config, trace, shards),
                            std::string(toString(protocol)) + " shards " +
                                std::to_string(shards));
        }
    }
}

TEST(ParallelEquivalence, HierRandomArbiterKeepsRngStreams)
{
    // The hinge case: every bus (global and per-cluster) draws one RNG
    // value per Random grant, so shard scheduling must not reorder or
    // repartition any bus's draw sequence.
    auto trace = makeHotSpotTrace(8, 400, 8);
    hier::HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.arbiter = ArbiterKind::Random;
    config.arbiter_seed = 99;
    Observed sequential = observeHier(config, trace, 1);
    for (int shards : shardCounts()) {
        expectIdentical(sequential, observeHier(config, trace, shards),
                        "random arbiter shards " +
                            std::to_string(shards));
    }
}

TEST(ParallelEquivalence, DynamicScheduleMatchesToo)
{
    // The dynamic (load-balanced) schedule keeps every shard ticking
    // exactly once per cycle, so results must still match even though
    // only the static schedule guarantees it as a contract.
    auto trace = makeUniformRandomTrace(8, 600, 64, 0.4, 0.1, 23);
    hier::HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.deterministic_shards = false;
    Observed sequential = observeHier(config, trace, 1);
    expectIdentical(sequential, observeHier(config, trace, 4),
                    "dynamic schedule");
}

TEST(ParallelEquivalence, LookaheadOnVsOffAllProtocols)
{
    // Conservative lookahead (multi-cycle barrier windows) is a host-
    // performance knob like the shard count: for both L1 protocols,
    // runs with windows enabled must match the windowless baseline at
    // every lane count, and the 1-lane run (which never forms
    // windows) anchors both.
    auto trace = makeUniformRandomTrace(16, 600, 128, 0.3, 0.05, 19);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        hier::HierConfig config;
        config.num_clusters = 8;
        config.pes_per_cluster = 2;
        config.cache_lines = 64;
        config.protocol = protocol;
        config.lookahead = false;
        Observed baseline = observeHier(config, trace, 1);
        for (int shards : {1, 2, 4}) {
            std::string label = std::string(toString(protocol)) +
                                " shards " + std::to_string(shards);
            expectIdentical(baseline,
                            observeHier(config, trace, shards),
                            label + " lookahead off");
            hier::HierConfig windowed = config;
            windowed.lookahead = true;
            expectIdentical(baseline,
                            observeHier(windowed, trace, shards),
                            label + " lookahead on");
        }
    }
}

TEST(ParallelEquivalence, LookaheadOnVsOffRandomArbiter)
{
    // Windows bulk-skip the global bus between barriers; the Random
    // arbiter's per-bus RNG draw sequences must survive that exactly.
    auto trace = makeHotSpotTrace(8, 400, 8);
    hier::HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.arbiter = ArbiterKind::Random;
    config.arbiter_seed = 99;
    config.lookahead = false;
    Observed baseline = observeHier(config, trace, 1);
    for (int shards : {1, 2, 4}) {
        hier::HierConfig windowed = config;
        windowed.lookahead = true;
        expectIdentical(baseline,
                        observeHier(config, trace, shards),
                        "random arbiter lookahead off shards " +
                            std::to_string(shards));
        expectIdentical(baseline,
                        observeHier(windowed, trace, shards),
                        "random arbiter lookahead on shards " +
                            std::to_string(shards));
    }
}

TEST(ParallelEquivalence, LookaheadOnVsOffDirectoryGlobal)
{
    // Directory mode routes the cross-shard edge through the fabric's
    // armEvents generation counter; lookahead windows must keep every
    // arm exactly one serial tick ahead of its routing pass.
    auto trace = makeUniformRandomTrace(16, 500, 128, 0.3, 0.05, 43);
    hier::HierConfig config;
    config.num_clusters = 8;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.global = hier::GlobalKind::Directory;
    config.home_nodes = 4;
    config.lookahead = false;
    Observed baseline = observeHier(config, trace, 1);
    for (int shards : {1, 2, 4}) {
        hier::HierConfig windowed = config;
        windowed.lookahead = true;
        expectIdentical(baseline,
                        observeHier(config, trace, shards),
                        "directory lookahead off shards " +
                            std::to_string(shards));
        expectIdentical(baseline,
                        observeHier(windowed, trace, shards),
                        "directory lookahead on shards " +
                            std::to_string(shards));
    }
}

TEST(ParallelEquivalence, TimedOutRunReportsTheSameWallCycle)
{
    auto trace = makeHotSpotTrace(8, 400, 4);
    hier::HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    Observed sequential = observeHier(config, trace, 1, 200);
    EXPECT_EQ(sequential.status, RunStatus::TimedOut);
    EXPECT_EQ(sequential.cycles, 200u);
    for (int shards : shardCounts()) {
        expectIdentical(sequential,
                        observeHier(config, trace, shards, 200),
                        "timed out shards " + std::to_string(shards));
    }
}

TEST(ParallelEquivalence, RecordLogPinsToOneLaneIdentically)
{
    // record_log forces the run sequential; the log (and everything
    // else) must match a sharded config byte for byte.
    auto trace = makeUniformRandomTrace(8, 500, 64, 0.3, 0.05, 31);
    hier::HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.record_log = true;

    config.shards = 1;
    hier::HierSystem sequential(config);
    sequential.loadTrace(trace);
    sequential.run();
    config.shards = 4;
    hier::HierSystem pinned(config);
    pinned.loadTrace(trace);
    pinned.run();

    EXPECT_EQ(sequential.now(), pinned.now());
    EXPECT_EQ(sequential.counters().report(),
              pinned.counters().report());
    ASSERT_EQ(sequential.log().all().size(), pinned.log().all().size());
    for (std::size_t i = 0; i < sequential.log().all().size(); i++) {
        EXPECT_EQ(sequential.log().all()[i].cycle,
                  pinned.log().all()[i].cycle)
            << "log entry " << i;
    }
}

TEST(ParallelEquivalence, ProcessDefaultReachesInternallyBuiltMachines)
{
    // setDefaultShards (the --shards flag) must cover machines built
    // inside library code, and must never perturb flat machines —
    // multibus, Random arbiter, and lock workloads included.
    auto trace = makeUniformRandomTrace(4, 800, 64, 0.4, 0.1, 23);
    SystemConfig flat;
    flat.num_pes = 4;
    flat.cache_lines = 64;
    flat.num_buses = 2;
    flat.arbiter = ArbiterKind::Random;
    flat.arbiter_seed = 7;
    flat.memory_latency = 8;

    auto observeFlat = [&] {
        System system(flat);
        system.loadTrace(trace);
        std::string report;
        Cycle cycles = system.run();
        report = system.counters().report();
        return std::make_pair(cycles, report);
    };

    auto baseline = observeFlat();
    sync::LockExperimentConfig lock;
    lock.num_pes = 8;
    lock.lock = sync::LockKind::TestAndSet;
    lock.acquisitions_per_pe = 4;
    lock.cs_increments = 4;
    lock.memory_latency = 16;
    auto lock_baseline = sync::runLockExperiment(lock);

    setDefaultShards(4);
    auto sharded = observeFlat();
    auto lock_sharded = sync::runLockExperiment(lock);

    // Hier machines with config.shards = 0 pick the default up.
    auto hier_trace = makeUniformRandomTrace(8, 400, 64, 0.3, 0.05, 41);
    hier::HierConfig hier_config;
    hier_config.num_clusters = 4;
    hier_config.pes_per_cluster = 2;
    hier_config.cache_lines = 64;
    hier_config.shards = 0;
    hier::HierSystem defaulted(hier_config);
    Observed via_default;
    {
        defaulted.loadTrace(hier_trace);
        via_default.cycles = defaulted.run();
        via_default.counters = defaulted.counters().report();
    }
    setDefaultShards(1);

    EXPECT_EQ(baseline.first, sharded.first);
    EXPECT_EQ(baseline.second, sharded.second);
    EXPECT_EQ(lock_baseline.cycles, lock_sharded.cycles);
    EXPECT_EQ(lock_baseline.counter_value, lock_sharded.counter_value);
    EXPECT_EQ(lock_baseline.bus_transactions,
              lock_sharded.bus_transactions);

    Observed sequential = observeHier(hier_config, hier_trace, 1);
    EXPECT_EQ(sequential.cycles, via_default.cycles);
    EXPECT_EQ(sequential.counters, via_default.counters);
}

TEST(ParallelEquivalence, RunResultJsonIsIdenticalAcrossShards)
{
    // The CI-level check in miniature: the default (no --timing) JSON
    // payload of an experiment run must not move with the process-wide
    // shard default.
    auto trace = makeHotSpotTrace(4, 400, 8);
    exp::TraceRun run;
    run.trace = trace;
    run.config.num_pes = 4;
    run.config.cache_lines = 64;
    run.config.memory_latency = 16;

    exp::RunResult baseline = exp::executeTraceRun(run);
    setDefaultShards(4);
    exp::RunResult sharded = exp::executeTraceRun(run);
    setDefaultShards(1);
    EXPECT_EQ(baseline.toJson(false).dump(), sharded.toJson(false).dump());
}

} // namespace
} // namespace ddc
